"""Figure 6: breakdown of L1D misses by where the load was served.

Paper claims: with interleaved execution most L1D misses become LFB or
L1 hits (the prefetch got there first); sequential execution eats L3
hits and DRAM accesses. GP's prefetch-to-load distance is the shortest,
so it retains more in-flight (LFB) hits than AMAC/CORO, whose fills
usually complete before the loop returns.
"""

from repro.analysis import format_size, format_table
from repro.sim.memory import HIT_LEVELS

LLC = 25 << 20


def test_fig6_load_level_breakdown(benchmark, record_table, int_sweep):
    def compute():
        rows = []
        per_point = {}
        for technique, points in int_sweep["points"].items():
            for point in points:
                loads = point.loads_per_search
                per_point[(technique, point.size_bytes)] = loads
                rows.append(
                    [
                        technique,
                        format_size(point.size_bytes),
                        *(round(loads[level], 1) for level in HIT_LEVELS),
                    ]
                )
        return rows, per_point

    rows, per_point = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "fig6_l1d_misses",
        format_table(
            ["technique", "size", *HIT_LEVELS],
            rows,
            title="Figure 6: loads/search by serving level",
        ),
    )

    large = int_sweep["sizes"][-1]

    # Sequential execution pays DRAM accesses beyond the LLC...
    assert per_point[("Baseline", large)]["DRAM"] > 5
    # ...interleaving essentially eliminates them: the prefetched lines
    # are found in the LFBs or already installed in L1.
    for technique in ("GP", "AMAC", "CORO"):
        loads = per_point[(technique, large)]
        assert loads["DRAM"] < 1.0, technique
        covered = loads["L1"] + loads["LFB"]
        assert covered > 10, technique

    # GP switches fastest, so more of its loads catch the fill still in
    # flight (LFB hits) compared to AMAC/CORO.
    assert (
        per_point[("GP", large)]["LFB"] > per_point[("CORO", large)]["LFB"]
    )
