"""Table 1: execution details of ``locate`` at the sweep extremes.

Paper: locate's share of query runtime surges from 21.4% (Main) /
34.3% (Delta) at 1 MB to 65.7% / 78.8% at 2 GB, driven by a ~7x/6x CPI
increase. We reproduce the direction and rough magnitudes: small share
and low CPI in-cache, dominant share and several-fold CPI beyond.
"""

from repro.analysis import format_pct, format_table


def test_table1_locate_runtime_and_cpi(benchmark, record_table, query_sweep):
    def compute():
        sizes = query_sweep["sizes"]
        small, large = 0, len(sizes) - 1
        cells = {}
        for store in ("main", "delta"):
            points = query_sweep["points"][(store, "sequential")]
            cells[store] = {
                "small": points[small],
                "large": points[large],
            }
        return sizes, cells

    sizes, cells = benchmark.pedantic(compute, rounds=1, iterations=1)
    from repro.analysis import format_size

    small_label = format_size(sizes[0])
    large_label = format_size(sizes[-1])
    rows = [
        [
            "Runtime %",
            format_pct(cells["main"]["small"].locate_fraction),
            format_pct(cells["main"]["large"].locate_fraction),
            format_pct(cells["delta"]["small"].locate_fraction),
            format_pct(cells["delta"]["large"].locate_fraction),
        ],
        [
            "Cycles per Instruction",
            f"{cells['main']['small'].locate_tmam.cpi:.1f}",
            f"{cells['main']['large'].locate_tmam.cpi:.1f}",
            f"{cells['delta']['small'].locate_tmam.cpi:.1f}",
            f"{cells['delta']['large'].locate_tmam.cpi:.1f}",
        ],
    ]
    record_table(
        "table1_locate_profile",
        format_table(
            [
                "",
                f"Main {small_label}",
                f"Main {large_label}",
                f"Delta {small_label}",
                f"Delta {large_label}",
            ],
            rows,
            title="Table 1: execution details of locate (sequential)",
        ),
    )

    for store in ("main", "delta"):
        small = cells[store]["small"]
        large = cells[store]["large"]
        # locate's runtime share surges with dictionary size...
        assert large.locate_fraction > 1.5 * small.locate_fraction, store
        assert large.locate_fraction > 0.5, store
        # ...because CPI degrades several-fold.
        assert large.locate_tmam.cpi > 2.5 * small.locate_tmam.cpi, store
