"""Ablation (Section 6): interleaving a hash-join probe phase.

The paper argues its technique transfers to any pointer-based index,
hash tables with bucket chains first among them. This benchmark builds
a hash table whose directory and chain nodes far exceed the LLC and
probes it sequentially and interleaved.
"""

import numpy as np

from repro import perf
from repro.analysis import bench_scale, format_table
from repro.config import HASWELL
from repro.indexes.hash_table import ChainedHashTable
from repro.interleaving import BulkLookup, get_executor
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem


def _scaled(n_quick, n_full):
    return n_full if bench_scale() == "full" else n_quick


def measure_probe_point(
    name: str, group: int | None, build_rows: int, n_probes: int
) -> dict:
    """One probe mode; the table is rebuilt from seed 0 inside the
    worker so both modes probe bit-identical chains."""
    rng = np.random.RandomState(0)
    allocator = AddressSpaceAllocator()
    keys = np.unique(rng.randint(0, 8 * build_rows, build_rows * 2))[:build_rows]
    table = ChainedHashTable(allocator, "join", n_buckets=build_rows)
    table.build(keys, keys)
    probes = [int(k) for k in rng.choice(keys, n_probes)]
    warm = [int(k) for k in rng.choice(keys, n_probes)]

    executor = get_executor(name)
    memory = MemorySystem(HASWELL)
    executor.run(
        BulkLookup.hash_probe(table, warm),
        ExecutionEngine(HASWELL, memory),
        group_size=group,
    )
    engine = ExecutionEngine(HASWELL, memory)
    values = executor.run(
        BulkLookup.hash_probe(table, probes), engine, group_size=group
    )
    return {"cycles": engine.clock / n_probes, "values": values}


def test_ablation_hash_probe_interleaving(benchmark, record_table):
    def compute():
        common = {
            "build_rows": _scaled(600_000, 4_000_000),
            "n_probes": _scaled(800, 5_000),
        }
        modes = [
            ("sequential", {"name": "sequential", "group": None}),
            ("interleaved G=8", {"name": "CORO", "group": 8}),
        ]
        points = perf.default_runner().map(
            measure_probe_point, [spec for _, spec in modes], common=common
        )
        return {
            label: (point["cycles"], point["values"])
            for (label, _), point in zip(modes, points)
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "ablation_hash_join",
        format_table(
            ["mode", "cycles/probe"],
            [[label, round(cycles)] for label, (cycles, _) in results.items()],
            title="Ablation: hash-join probe, sequential vs interleaved",
        ),
    )
    (seq_cycles, seq_values) = results["sequential"]
    (inter_cycles, inter_values) = results["interleaved G=8"]
    assert seq_values == inter_values
    assert inter_cycles < 0.6 * seq_cycles  # interleaving pays off here too
