"""Ablation (Section 6): interleaving skip-list lookups.

A third pointer-based index (after the CSB+-tree and the hash table)
driven by the *same* unmodified schedulers — the generality claim in
practice. Skip-list towers make hop counts vary per lookup, the
divergent-control-flow case GP cannot express but coroutines (and AMAC)
handle naturally.
"""

import numpy as np

from repro import perf
from repro.analysis import bench_scale, format_table
from repro.config import HASWELL
from repro.indexes.skip_list import SkipList, skip_lookup_stream
from repro.interleaving import BulkLookup, get_executor
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem


def measure_skip_list_point(
    name: str, group: int | None, n_keys: int, n_probes: int
) -> dict:
    """One probe mode; the skip list is rebuilt from seed 0 in-worker so
    the towers (which come from the rng) are bit-identical across modes."""
    rng = np.random.RandomState(0)
    keys = np.unique(rng.randint(0, 10**9, n_keys * 2))[:n_keys]
    rng.shuffle(keys)
    keys = [int(k) for k in keys]
    skiplist = SkipList(AddressSpaceAllocator(), "sl", capacity_hint=n_keys)
    skiplist.build(keys, keys)
    probes = [int(k) for k in rng.choice(keys, n_probes)]
    warm = [int(k) for k in rng.choice(keys, n_probes)]
    factory = lambda key, il: skip_lookup_stream(skiplist, key, il)

    # Skip-list towers are a stream workload: the coroutine is supplied
    # directly, and both schedulers drive it unchanged.
    executor = get_executor(name)
    memory = MemorySystem(HASWELL)
    executor.run(
        BulkLookup.stream(factory, warm),
        ExecutionEngine(HASWELL, memory),
        group_size=group,
    )
    engine = ExecutionEngine(HASWELL, memory)
    values = executor.run(
        BulkLookup.stream(factory, probes), engine, group_size=group
    )
    return {"cycles": engine.clock / n_probes, "values": values}


def test_ablation_skip_list_interleaving(benchmark, record_table):
    def compute():
        common = {
            "n_keys": 300_000 if bench_scale() == "full" else 80_000,
            "n_probes": 2_000 if bench_scale() == "full" else 300,
        }
        modes = [
            ("sequential", {"name": "sequential", "group": None}),
            ("interleaved G=8", {"name": "CORO", "group": 8}),
        ]
        points = perf.default_runner().map(
            measure_skip_list_point, [spec for _, spec in modes], common=common
        )
        return {
            label: (point["cycles"], point["values"])
            for (label, _), point in zip(modes, points)
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "ablation_skip_list",
        format_table(
            ["mode", "cycles/lookup"],
            [[label, round(cycles)] for label, (cycles, _) in results.items()],
            title="Ablation: skip-list lookups, sequential vs interleaved",
        ),
    )
    seq_cycles, seq_values = results["sequential"]
    inter_cycles, inter_values = results["interleaved G=8"]
    assert seq_values == inter_values
    assert inter_cycles < 0.6 * seq_cycles
