"""Shared fixtures for the reproduction benchmarks.

Conventions:

* every benchmark reproduces one table or figure from the paper and
  renders it as an ASCII table via ``record_table`` — tables are written
  to ``benchmarks/results/`` and echoed in the terminal summary, so the
  output of ``pytest benchmarks/ --benchmark-only`` contains the
  reproduced artifacts, not just timings;
* heavy sweeps that several figures share (Figures 3, 5, 6 all come
  from one sweep) are session-scoped fixtures, computed once;
* ``REPRO_BENCH_SCALE=full`` switches to the paper's full 1 MB–2 GB
  grid with 10 K lookups; the default quick grid brackets the 25 MB LLC
  boundary with fewer points.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import perf
from repro.analysis import (
    TECHNIQUES,
    bench_scale,
    binary_sweep_grid,
    lookups_per_point,
    measure_binary_search,
    size_grid,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    group = parser.getgroup("repro")
    group.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulator sweeps (default: REPRO_JOBS or cpu count)",
    )
    group.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="recompute every sweep point instead of replaying the result cache",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs")
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    use_cache = not (
        config.getoption("--no-cache") or os.environ.get("REPRO_NO_CACHE")
    )
    perf.configure(
        jobs=jobs, cache=perf.ResultCache() if use_cache else None
    )

_RECORDED: list[tuple[str, str]] = []

#: Machine-readable accumulation of every sweep point measured this run;
#: written to ``benchmarks/results/BENCH_sim.json`` at session end.
_JSON_DOC: dict = {"schema": "repro.bench-sim/1", "sweeps": {}}


def _point_record(point) -> dict:
    """Flatten one BinarySearchPoint into the BENCH_sim.json row shape."""
    return {
        "technique": point.technique,
        "size_bytes": point.size_bytes,
        "element": point.element,
        "group_size": point.group_size,
        "n_lookups": point.n_lookups,
        "cycles_per_search": point.cycles_per_search,
        "cpi": point.tmam.cpi,
        "cycles_by_category_per_search": point.cycles_by_category_per_search,
        "loads_per_search": dict(point.loads_per_search),
        "walks_per_search": dict(point.walks_per_search),
    }


def _query_record(point) -> dict:
    """Flatten one QueryPoint into the BENCH_sim.json row shape."""
    return {
        "store": point.store,
        "strategy": point.strategy,
        "dict_bytes": point.dict_bytes,
        "n_predicates": point.n_predicates,
        "total_cycles": point.total_cycles,
        "locate_cycles": point.locate_cycles,
        "scan_cycles": point.scan_cycles,
        "response_ms": point.response_ms,
        "locate_fraction": point.locate_fraction,
        "locate_cpi": point.locate_tmam.cpi,
        "locate_breakdown": point.locate_tmam.breakdown(),
        "operators": [dict(op) for op in getattr(point, "operators", ())],
    }


@pytest.fixture(scope="session")
def record_table():
    """Record a reproduced table/figure for the terminal summary."""

    def _record(name: str, text: str) -> None:
        _RECORDED.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _JSON_DOC["sweeps"]:
        RESULTS_DIR.mkdir(exist_ok=True)
        artifact = RESULTS_DIR / "BENCH_sim.json"
        artifact.write_text(json.dumps(_JSON_DOC, indent=2, sort_keys=True) + "\n")
        terminalreporter.write_line(f"wrote {artifact}")
    if not _RECORDED:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, text in _RECORDED:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)


def _sweep(element: str) -> dict:
    """The Figure 3 sweep: all five techniques across the size grid."""
    sizes = size_grid()
    grid = binary_sweep_grid(sizes)
    results = perf.default_runner().map(
        measure_binary_search,
        grid,
        common={"element": element, "n_lookups": lookups_per_point()},
    )
    points: dict[str, list] = {technique: [] for technique in TECHNIQUES}
    for spec, point in zip(grid, results):
        points[spec["technique"]].append(point)
    _JSON_DOC["sweeps"][f"binary_search_{element}"] = {
        "scale": bench_scale(),
        "points": [
            _point_record(point) for column in points.values() for point in column
        ],
    }
    return {"sizes": sizes, "points": points, "scale": bench_scale()}


@pytest.fixture(scope="session")
def int_sweep():
    """Shared sweep over integer arrays (Figures 3a, 5, 6, TLB analysis)."""
    return _sweep("int")


@pytest.fixture(scope="session")
def string_sweep():
    """Shared sweep over 15-char string arrays (Figure 3b)."""
    return _sweep("string")


def _query_sweep() -> dict:
    """Shared IN-predicate query sweep (Figures 1 and 8, Tables 1-2)."""
    from repro.analysis import measure_query

    sizes = size_grid()
    n_predicates = lookups_per_point(default_quick=400, default_full=10_000)
    combos = [
        (store, strategy)
        for store in ("main", "delta")
        for strategy in ("sequential", "interleaved")
    ]
    grid = [
        {"dict_bytes": size, "store": store, "strategy": strategy}
        for store, strategy in combos
        for size in sizes
    ]
    results = perf.default_runner().map(
        measure_query, grid, common={"n_predicates": n_predicates}
    )
    points: dict[tuple[str, str], list] = {}
    for combo, start in zip(combos, range(0, len(grid), len(sizes))):
        points[combo] = results[start : start + len(sizes)]
    _JSON_DOC["sweeps"]["query"] = {
        "scale": bench_scale(),
        "points": [
            _query_record(point) for column in points.values() for point in column
        ],
    }
    return {
        "sizes": sizes,
        "points": points,
        "n_predicates": n_predicates,
        "scale": bench_scale(),
    }


@pytest.fixture(scope="session")
def query_sweep():
    return _query_sweep()
