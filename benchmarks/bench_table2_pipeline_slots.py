"""Table 2: TMAM pipeline-slot breakdown of ``locate``.

Paper: at 2 GB, Memory stalls dominate locate for both stores (46.0%
Main, 85.9% Delta); at 1 MB they are minor. Main's sequential locate is
the speculative binary search, so Bad Speculation takes a large share
in-cache (43.3% in the paper); Delta uses conditional moves and shows
essentially none.
"""

from repro.analysis import format_pct, format_table
from repro.sim.tmam import CATEGORIES


def test_table2_pipeline_slot_breakdown(benchmark, record_table, query_sweep):
    def compute():
        sizes = query_sweep["sizes"]
        breakdowns = {}
        for store in ("main", "delta"):
            points = query_sweep["points"][(store, "sequential")]
            breakdowns[(store, "small")] = points[0].locate_tmam.breakdown()
            breakdowns[(store, "large")] = points[-1].locate_tmam.breakdown()
        return sizes, breakdowns

    sizes, breakdowns = benchmark.pedantic(compute, rounds=1, iterations=1)
    from repro.analysis import format_size

    columns = [
        ("main", "small"),
        ("main", "large"),
        ("delta", "small"),
        ("delta", "large"),
    ]
    labels = {
        ("main", "small"): f"Main {format_size(sizes[0])}",
        ("main", "large"): f"Main {format_size(sizes[-1])}",
        ("delta", "small"): f"Delta {format_size(sizes[0])}",
        ("delta", "large"): f"Delta {format_size(sizes[-1])}",
    }
    rows = [
        [category, *(format_pct(breakdowns[c][category]) for c in columns)]
        for category in CATEGORIES
    ]
    record_table(
        "table2_pipeline_slots",
        format_table(
            ["", *(labels[c] for c in columns)],
            rows,
            title="Table 2: pipeline-slot breakdown of locate (sequential)",
        ),
    )

    # Memory stalls dominate at the large end for both stores...
    assert breakdowns[("main", "large")]["Memory"] > 0.45
    assert breakdowns[("delta", "large")]["Memory"] > 0.6
    # ...and are much smaller in-cache.
    assert (
        breakdowns[("main", "small")]["Memory"]
        < breakdowns[("main", "large")]["Memory"] / 2
    )
    # Main's speculative search wastes slots in-cache; Delta's
    # conditional-move search does not (Section 2.2).
    assert breakdowns[("main", "small")]["Bad Speculation"] > 0.15
    assert breakdowns[("delta", "small")]["Bad Speculation"] < 0.01
    assert breakdowns[("delta", "large")]["Bad Speculation"] < 0.01
