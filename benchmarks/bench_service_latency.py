"""Serving-layer benchmark: throughput vs latency per technique.

The serving counterpart of Figure 3's robustness sweep: instead of bulk
probes over growing tables, a fixed DRAM-resident table under growing
*offered load*. Asserted claims mirror the paper's story restated
online:

* below the knee every technique meets its SLO — interleaving buys
  nothing when the queue is empty and batches are deadline-formed;
* at the top load (3x sequential capacity) CORO sustains at least the
  sequential executor's throughput with a lower p99 — robustness under
  load the server did not choose;
* the latency decomposition invariant holds for every completed
  request (queue wait + batch wait + execution == end-to-end).

The sweep is recorded to ``benchmarks/results/BENCH_service.json``
(schema ``repro.service/1``), validated in CI by
``benchmarks/check_bench_schema.py``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.service import run_scenario, render_service_doc, get_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _top_points(doc: dict, technique: str) -> dict:
    top = max(p["load_multiplier"] for p in doc["points"])
    return next(
        p
        for p in doc["points"]
        if p["technique"] == technique and p["load_multiplier"] == top
    )


@pytest.fixture(scope="module")
def service_sweep():
    doc = run_scenario("mixed", seed=0)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_service.json"
    artifact.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def test_service_throughput_latency_curve(benchmark, record_table, service_sweep):
    doc = benchmark.pedantic(lambda: service_sweep, rounds=1, iterations=1)
    record_table("service_latency", render_service_doc(doc))

    # Offered load is calibrated and positive at every point.
    assert doc["seq_capacity_per_kcycle"] > 0
    assert all(p["offered_load"] > 0 for p in doc["points"])

    # Light load: everyone meets the SLO; batching paid for itself.
    scenario = get_scenario("mixed")
    light = min(scenario.loads)
    for technique in scenario.techniques:
        point = next(
            p
            for p in doc["points"]
            if p["technique"] == technique and p["load_multiplier"] == light
        )
        assert point["slo_attainment"] >= 0.95, technique

    # The robustness headline: at 3x sequential capacity, CORO sustains
    # >= sequential throughput with a lower p99.
    seq = _top_points(doc, "sequential")
    coro = _top_points(doc, "CORO")
    assert coro["throughput"] >= seq["throughput"]
    assert coro["p99"] < seq["p99"]
    # And it is not a photo finish: the interleaved server keeps a
    # comfortably higher completion rate under the same offered load.
    assert coro["throughput"] > 1.5 * seq["throughput"]

    # Every interleaving technique holds its knee past sequential's.
    for technique in ("GP", "AMAC", "CORO"):
        point = _top_points(doc, technique)
        assert point["throughput"] > seq["throughput"], technique

    # Percentiles are monotone at every point (p50 <= p95 <= p99).
    for point in doc["points"]:
        assert point["p50"] <= point["p95"] <= point["p99"], point["technique"]


def test_service_overload_is_bounded(benchmark, service_sweep):
    doc = benchmark.pedantic(lambda: service_sweep, rounds=1, iterations=1)
    capacity = get_scenario("mixed").config.queue_capacity
    for point in doc["points"]:
        # The admission queue never outgrew its bound, and everything
        # that arrived is accounted for: admitted + refused == arrivals.
        assert point["peak_queue_depth"] <= capacity, point["technique"]
        refused = point["rejected"] + point["dropped"] + point["shed"]
        assert point["admitted"] + refused == point["arrivals"]
    # Sequential at 3x capacity actually had to refuse work — the
    # overload path was exercised, not just configured.
    assert _top_points(doc, "sequential")["rejected"] > 0
