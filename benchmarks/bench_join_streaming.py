"""Streaming index-join benchmark: the operator path, sized and bounded.

Two claims about the :class:`repro.query.IndexJoin` operator:

* **Robustness** — joining a probe stream against a sorted inner index
  through the CORO executor beats the sequential probe once the index
  outgrows the LLC, exactly as the bulk-lookup sweeps show: the
  operator layer adds bookkeeping on the Python side but charges the
  same simulated probe work.
* **Bounded buffers** — the producer/probe stages are connected by
  bounded task/match buffers. The degenerate capacity-1 configuration
  (one task in flight, one match batch buffered, probe batches of one)
  must complete with the *same* matches as any other configuration —
  never deadlock, never drop or duplicate a row.

The sweep is recorded to ``benchmarks/results/BENCH_join.json``
(schema ``repro.query/1``, kind ``join_streaming``), validated in CI
by ``benchmarks/check_bench_schema.py``.

Measurement functions live at module level so the perf layer's process
pool can pickle them; points replay from the result cache like every
other sweep.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import perf
from repro.analysis import bench_scale, lookups_per_point, size_grid

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
LLC = 25 << 20
SEED = 0

#: Inner-index size for the bounded-buffer sweep: one comfortably
#: DRAM-resident point (past the LLC on the quick grid too).
BUFFER_TABLE_BYTES = 64 << 20

#: (task_buffer, match_buffer, probe_batch) configurations swept for
#: the equivalence claim; (1, 1, 1) is the degenerate lock-step case.
BUFFER_CONFIGS = (
    (1, 1, 1),
    (1, 1, 8),
    (4, 1, 8),
    (1, 4, 8),
    (8, 8, 64),
)


def _join_plan(table, values, executor, task_buffer, match_buffer, probe_batch):
    from repro.query import IndexJoin, QueryPlan, Scan, SortedArrayInner

    return QueryPlan(
        IndexJoin(
            Scan.values(values, batch_size=probe_batch, label="probe_values"),
            SortedArrayInner(table),
            executor=executor,
            task_buffer=task_buffer,
            match_buffer=match_buffer,
            label="join",
        )
    )


def measure_join(
    table_bytes: int,
    executor: str,
    *,
    n_lookups: int,
    task_buffer: int = 1,
    match_buffer: int = 1,
    probe_batch: int | None = None,
    seed: int = SEED,
) -> dict:
    """Measure one streaming index-join point (module-level: picklable).

    Warm-up pass with a disjoint probe list, then a measured pass;
    returns a plain dict so points replay from the perf result cache.
    """
    from repro.analysis.experiments import warmed_engine
    from repro.config import HASWELL
    from repro.sim.allocator import AddressSpaceAllocator
    from repro.workloads.generators import lookup_values, make_table

    allocator = AddressSpaceAllocator(page_size=HASWELL.page_size)
    table = make_table(allocator, "join/inner", table_bytes)
    values = lookup_values(n_lookups, table, seed)
    warm_values = lookup_values(n_lookups, table, seed + 977)

    def run(engine, probe):
        plan = _join_plan(
            table, probe, executor, task_buffer, match_buffer, probe_batch
        )
        return plan.execute(engine)

    engine = warmed_engine(HASWELL, [table.region], lambda warm: run(warm, warm_values))
    result = run(engine, values)
    join = result.profile("join")
    matches = sorted(result.value)
    return {
        "table_bytes": table_bytes,
        "executor": executor,
        "n_lookups": n_lookups,
        "task_buffer": task_buffer,
        "match_buffer": match_buffer,
        "probe_batch": probe_batch or n_lookups,
        "total_cycles": join.cycles,
        "n_matches": len(matches),
        "match_checksum": hash(tuple(matches)) & 0xFFFFFFFF,
        "batches_via_index": join.attrs.get("batches_via_index", 0),
        "batches_via_fallback": join.attrs.get("batches_via_fallback", 0),
    }


@pytest.fixture(scope="module")
def join_sweep():
    """CORO vs sequential across the size grid, plus the buffer sweep."""
    sizes = size_grid()
    n_lookups = lookups_per_point()
    grid = [
        {"table_bytes": size, "executor": executor}
        for executor in ("sequential", "CORO")
        for size in sizes
    ]
    grid += [
        {
            "table_bytes": BUFFER_TABLE_BYTES,
            "executor": "CORO",
            "task_buffer": task,
            "match_buffer": match,
            "probe_batch": probe,
        }
        for task, match, probe in BUFFER_CONFIGS
    ]
    results = perf.default_runner().map(
        measure_join, grid, common={"n_lookups": n_lookups}
    )
    sequential = results[: len(sizes)]
    coro = results[len(sizes) : 2 * len(sizes)]
    buffers = results[2 * len(sizes) :]

    doc = {
        "schema": "repro.query/1",
        "kind": "join_streaming",
        "scale": bench_scale(),
        "llc_bytes": LLC,
        "n_lookups": n_lookups,
        "seed": SEED,
        "points": [
            {
                "table_bytes": seq["table_bytes"],
                "n_lookups": n_lookups,
                "sequential_cycles": seq["total_cycles"],
                "coro_cycles": cor["total_cycles"],
                "speedup": round(seq["total_cycles"] / cor["total_cycles"], 4),
            }
            for seq, cor in zip(sequential, coro)
        ],
        "buffer_sweep": [
            {
                "task_buffer": b["task_buffer"],
                "match_buffer": b["match_buffer"],
                "probe_batch": b["probe_batch"],
                "total_cycles": b["total_cycles"],
                "n_matches": b["n_matches"],
            }
            for b in buffers
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_join.json"
    artifact.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return {"doc": doc, "raw": {"sequential": sequential, "coro": coro, "buffers": buffers}}


def test_coro_join_beats_sequential_beyond_llc(benchmark, record_table, join_sweep):
    doc = benchmark.pedantic(lambda: join_sweep["doc"], rounds=1, iterations=1)
    from repro.analysis import format_size, series_table

    record_table(
        "join_streaming",
        series_table(
            "index size",
            [format_size(p["table_bytes"]) for p in doc["points"]],
            {
                "sequential cycles": [p["sequential_cycles"] for p in doc["points"]],
                "CORO cycles": [p["coro_cycles"] for p in doc["points"]],
                "speedup": [p["speedup"] for p in doc["points"]],
            },
            title=f"Streaming index join, CORO vs sequential ({doc['scale']} scale)",
        ),
    )
    beyond = [p for p in doc["points"] if p["table_bytes"] > LLC]
    assert beyond, "size grid never crossed the LLC"
    for point in beyond:
        assert point["speedup"] > 1.0, point["table_bytes"]

    # Both executors answered every probe through the index path.
    for raw in (*join_sweep["raw"]["sequential"], *join_sweep["raw"]["coro"]):
        assert raw["batches_via_index"] >= 1
        assert raw["batches_via_fallback"] == 0


def test_bounded_buffers_never_deadlock_and_agree(join_sweep):
    """Capacity-1 buffers complete and every configuration agrees."""
    buffers = join_sweep["raw"]["buffers"]
    assert {(b["task_buffer"], b["match_buffer"]) for b in buffers} >= {(1, 1)}
    matches = {b["n_matches"] for b in buffers}
    checksums = {b["match_checksum"] for b in buffers}
    assert len(matches) == 1, matches
    assert len(checksums) == 1, "buffer sizing changed the join's output"
    # Probe values are drawn from the table's own domain, so every
    # lookup finds its key: nothing was dropped in the buffers.
    for b in buffers:
        assert b["n_matches"] == b["n_lookups"]
