"""Ablations (Sections 4 and 6): coroutine-frame recycling and
hardware-supported conditional switching.

* Frame recycling — the paper's optimized CORO "avoids memory
  allocations by using the same coroutine frame for subsequent binary
  searches". Disabling recycling charges an allocation per lookup.
* Conditional switch — Section 6 wishes for "an instruction [that]
  tells if a memory address is cached; with such an instruction, we
  could avoid suspension when the data is cached". The engine's
  prefetch outcome plays that instruction.
"""

import numpy as np

from repro import perf
from repro.analysis import bench_scale, format_table, warm_llc_resident
from repro.config import HASWELL
from repro.indexes.binary_search import (
    binary_search_coro,
    binary_search_coro_conditional,
)
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving import BulkLookup, CoroExecutor
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem

_STREAMS = {
    "plain": binary_search_coro,
    "conditional": binary_search_coro_conditional,
}


def measure_coro_point(
    size: int, n: int, stream: str = "plain", recycle_frames: bool = True
) -> dict:
    """One ablation cell; the coroutine variant is selected by name so
    the point pickles (lambdas cannot cross the process boundary)."""
    allocator = AddressSpaceAllocator()
    array = int_array_of_bytes(allocator, "array", size)
    rng = np.random.RandomState(0)
    probes = [int(v) for v in rng.randint(0, array.size, n)]
    warm = [int(v) for v in rng.randint(0, array.size, n)]
    search = _STREAMS[stream]
    factory = lambda v, il: search(array, v, il)
    # Off-registry CoroExecutor instances carry the ablation knobs
    # (recycle_frames etc.) the registered CORO executor defaults.
    executor = CoroExecutor(recycle_frames=recycle_frames)
    memory = MemorySystem(HASWELL)
    if array.nbytes <= HASWELL.l3.size:
        warm_llc_resident(memory, [array.region])
    executor.run(
        BulkLookup.stream(factory, warm), ExecutionEngine(HASWELL, memory),
        group_size=6,
    )
    engine = ExecutionEngine(HASWELL, memory)
    results = executor.run(
        BulkLookup.stream(factory, probes), engine, group_size=6
    )
    return {"cycles": engine.clock / n, "results": results}


def test_ablation_frame_recycling(benchmark, record_table):
    def compute():
        n = 3_000 if bench_scale() == "full" else 400
        grid = [{"recycle_frames": True}, {"recycle_frames": False}]
        recycled, fresh = perf.default_runner().map(
            measure_coro_point, grid, common={"size": 256 << 20, "n": n}
        )
        assert recycled["results"] == fresh["results"]
        return recycled["cycles"], fresh["cycles"]

    recycled, fresh = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "ablation_frame_recycling",
        format_table(
            ["frames", "cycles/search"],
            [["recycled", round(recycled)], ["allocated per lookup", round(fresh)]],
            title="Ablation: coroutine-frame recycling (256 MB array)",
        ),
    )
    alloc_cost = HASWELL.cost.frame_alloc_cycles
    assert recycled < fresh
    # The gap is roughly one frame allocation per lookup.
    assert 0.4 * alloc_cost < fresh - recycled < 2.5 * alloc_cost


def test_ablation_conditional_switch(benchmark, record_table):
    def compute():
        n = 3_000 if bench_scale() == "full" else 400
        sizes = (1 << 20, 256 << 20)
        grid = [
            {"size": size, "stream": stream}
            for size in sizes
            for stream in ("plain", "conditional")
        ]
        points = perf.default_runner().map(
            measure_coro_point, grid, common={"n": n}
        )
        rows = []
        for i, size in enumerate(sizes):
            plain, conditional = points[2 * i], points[2 * i + 1]
            assert plain["results"] == conditional["results"]
            rows.append([size, plain["cycles"], conditional["cycles"]])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    from repro.analysis import format_size

    record_table(
        "ablation_conditional_switch",
        format_table(
            ["size", "always suspend", "suspend on miss only"],
            [[format_size(s), round(p), round(c)] for s, p, c in rows],
            title="Ablation: hardware-supported conditional switching",
        ),
    )
    for size, plain, conditional in rows:
        # Skipping suspensions for cached lines always helps — most for
        # cache-resident data, where every suspension is overhead.
        assert conditional < plain
    small_gain = rows[0][1] / rows[0][2]
    large_gain = rows[1][1] / rows[1][2]
    assert small_gain > large_gain
