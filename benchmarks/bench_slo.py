"""SLO burn-rate benchmark: the robustness claim in error-budget terms.

``bench_chaos.py`` states the robustness claim in p99 cycles; this
sweep restates it the way an SRE would read it: under the identical
deterministic fault schedule, the sequential server burns its error
budget strictly faster than CORO at every load point. Burn rate is the
SLO-miss fraction over the budget fraction (``repro.obs.slo``), so
"CORO burns slower" is exactly "CORO keeps more of its error budget
under chaos" — the serving story's bottom line.

Also asserted, because the ``repro.slo/1`` document is a contract:

* every point's cumulative ``budget_consumed`` series is monotone
  non-decreasing (budget only burns, never un-burns);
* every point's exemplar-histogram bucket counts sum to the number of
  answered requests, and the p99 exemplar (when present) names a
  deterministic ``req-NNNNN-XXXXXXXX`` trace id;
* two seeded runs emit byte-identical documents.

The seed-0 document is recorded to
``benchmarks/results/BENCH_slo.json`` (schema ``repro.slo/1``),
validated in CI by ``benchmarks/check_bench_schema.py``. The default
(quick) scale sweeps the ``chaos-quick`` scenario;
``REPRO_BENCH_SCALE=full`` switches to the full ``chaos`` grid.
"""

from __future__ import annotations

import json
import os
import pathlib
import re

import pytest

from repro.service import run_slo_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TRACE_ID = re.compile(r"^req-\d{5}-[0-9a-f]{8}$")


def _scenario_name() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return "chaos" if scale == "full" else "chaos-quick"


@pytest.fixture(scope="module")
def slo_sweep():
    doc = run_slo_scenario(_scenario_name(), seed=0)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_slo.json"
    artifact.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def _by_load(doc: dict) -> dict:
    table: dict = {}
    for point in doc["points"]:
        table.setdefault(point["load_multiplier"], {})[point["technique"]] = point
    return table


def test_slo_document_shape(benchmark, record_table, slo_sweep):
    doc = benchmark.pedantic(lambda: slo_sweep, rounds=1, iterations=1)

    assert doc["schema"] == "repro.slo/1"
    assert doc["kind"] == "slo"
    assert doc["fault_profile"] == doc["scenario"]
    assert doc["slo_cycles"] > 0 and 0.0 < doc["slo_target"] < 1.0
    rows = []
    for point in doc["points"]:
        burn = point["burn"]
        assert burn["events"] == point["requests"]
        assert burn["slo_cycles"] == doc["slo_cycles"]
        rows.append(
            [
                point["technique"],
                f"{point['load_multiplier']:g}",
                point["p99"],
                f"{100 * point['slo_attainment']:.1f}",
                f"{burn['overall_burn']:.2f}",
                f"{burn['max_burn_short']:.2f}",
                f"{burn['max_burn_long']:.2f}",
                burn["alert_windows"],
            ]
        )
    from repro.analysis import format_table

    record_table(
        "slo_burn",
        format_table(
            ["technique", "xload", "p99", "slo%", "burn", "max-s", "max-l", "alerts"],
            rows,
            title=(
                f"SLO burn ({doc['scenario']}, target {doc['slo_target']:.0%}, "
                f"budget {1 - doc['slo_target']:.0%}, faults={doc['fault_profile']})"
            ),
        ),
    )


def test_coro_burns_budget_slower_than_sequential(slo_sweep):
    """The headline: at every load point of the chaos sweep, CORO's
    overall burn rate is strictly below sequential's."""
    for load, techniques in sorted(_by_load(slo_sweep).items()):
        coro = techniques["CORO"]["burn"]["overall_burn"]
        seq = techniques["sequential"]["burn"]["overall_burn"]
        assert coro < seq, (
            f"x{load:g}: CORO burn {coro:.3f} not below sequential {seq:.3f}"
        )
        # And chaos actually cost sequential budget — the comparison is
        # not 0-vs-0.
        assert seq > 0, f"x{load:g}: sequential burned nothing under chaos"


def test_budget_consumption_is_monotone(slo_sweep):
    """Cumulative budget consumption never decreases within a point."""
    for point in slo_sweep["points"]:
        consumed = point["burn"]["budget_consumed"]
        assert consumed, point["technique"]
        assert all(a <= b for a, b in zip(consumed, consumed[1:])), (
            point["technique"],
            point["load_multiplier"],
            consumed,
        )


def test_histograms_account_for_every_answer(slo_sweep):
    """Bucket counts sum to answered requests; exemplars are trace ids."""
    for point in slo_sweep["points"]:
        hist = point["hist"]
        assert sum(hist["counts"]) == hist["count"] == point["served"]
        for exemplar in hist["exemplars"]:
            assert _TRACE_ID.match(exemplar["trace_id"]), exemplar
            assert hist["counts"][exemplar["bucket"]] > 0
        if point["served"]:
            assert point["p99_exemplar"] is not None
            assert _TRACE_ID.match(point["p99_exemplar"]["trace_id"])
        # Lane histograms decompose the same answers by executing lane.
        lane_total = sum(
            h["count"] for h in point["lane_hists"].values()
        )
        assert lane_total == point["served"], point["technique"]


def test_slo_document_is_deterministic():
    """Same scenario, same seed, byte-identical repro.slo/1 document."""
    first = run_slo_scenario("chaos-quick", seed=0)
    second = run_slo_scenario("chaos-quick", seed=0)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
