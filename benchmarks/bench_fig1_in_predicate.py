"""Figure 1: IN-predicate query response time, Main vs Main-Interleaved.

The paper's motivating figure: sequential execution degrades once the
dictionary outgrows the 25 MB LLC; interleaved execution is affected
much less, making the response time robust to dictionary size.
"""

from repro.analysis import format_size, series_table

LLC = 25 << 20


def test_fig1_main_query_response(benchmark, record_table, query_sweep):
    def compute():
        sizes = query_sweep["sizes"]
        main = query_sweep["points"][("main", "sequential")]
        inter = query_sweep["points"][("main", "interleaved")]
        return sizes, {
            "Main": [round(p.response_ms, 2) for p in main],
            "Main-Interleaved": [round(p.response_ms, 2) for p in inter],
        }

    sizes, series = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "fig1_in_predicate",
        series_table(
            "dict size",
            [format_size(s) for s in sizes],
            series,
            title="Figure 1: IN-predicate response time (ms), "
            f"{query_sweep['n_predicates']} INTEGER values "
            f"({query_sweep['scale']} scale)",
        ),
    )
    sequential = series["Main"]
    interleaved = series["Main-Interleaved"]
    beyond = [i for i, s in enumerate(sizes) if s > LLC]
    within = [i for i, s in enumerate(sizes) if s <= LLC]
    assert beyond and within

    # Sequential response grows much more than interleaved across the
    # LLC boundary (the figure's visual claim).
    seq_growth = sequential[beyond[-1]] / sequential[within[0]]
    inter_growth = interleaved[beyond[-1]] / interleaved[within[0]]
    assert seq_growth > 1.5 * inter_growth

    # Interleaving wins at every size beyond the LLC.
    for index in beyond:
        assert interleaved[index] < sequential[index]
