"""Ablation (Section 6): a page-blocked B+-tree to tame TLB misses.

Paper proposal: "introduce a B+-tree index with page-sized nodes on top
of the sorted array... the corresponding address translations hit in
the TLB most of the time, contrary to [plain binary search, which]
thrashes the TLB incurring expensive page walks." Both alternatives are
combined with interleaving.
"""

import numpy as np

from repro import perf
from repro.analysis import bench_scale, format_table, warm_llc_resident
from repro.config import HASWELL
from repro.indexes.btree_blocked import BlockedBTree, blocked_lookup_stream
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving import BulkLookup, get_executor
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem

ARRAY_BYTES = 512 << 20

#: label -> (index kind, executor name, group size). The index kind picks
#: the BulkLookup construction inside the (picklable) point function.
VARIANTS = {
    "binary search / seq": ("array", "Baseline", None),
    "binary search / coro": ("array", "CORO", 6),
    "blocked tree / seq": ("tree", "sequential", None),
    "blocked tree / coro": ("tree", "CORO", 6),
}


def measure_btree_point(label: str, n: int) -> dict:
    """One variant cell; rebuilds the 512 MB array + tree from seed 0."""
    kind, name, group = VARIANTS[label]
    allocator = AddressSpaceAllocator()
    array = int_array_of_bytes(allocator, "array", ARRAY_BYTES)
    tree = BlockedBTree(allocator, "btree", array)
    rng = np.random.RandomState(0)
    probes = [int(v) for v in rng.randint(0, array.size, n)]
    warm = [int(v) for v in rng.randint(0, array.size, n)]

    if kind == "array":
        tasks_of = lambda vs: BulkLookup.sorted_array(array, vs)
    else:
        tree_stream = lambda v, il: blocked_lookup_stream(tree, v, il)
        tasks_of = lambda vs: BulkLookup.stream(tree_stream, vs)
    executor = get_executor(name)
    memory = MemorySystem(HASWELL)
    warm_llc_resident(memory, [tree.region])
    executor.run(
        tasks_of(warm), ExecutionEngine(HASWELL, memory), group_size=group
    )
    engine = ExecutionEngine(HASWELL, memory)
    tmam0 = engine.tmam
    results = executor.run(tasks_of(probes), engine, group_size=group)
    return {
        "cycles": engine.clock / n,
        "translation": tmam0.translation_stall_cycles / n,
        "walks_total": memory.tlb.stats.walks,
        "results": results,
    }


def test_ablation_blocked_btree_vs_binary_search(benchmark, record_table):
    def compute():
        n = 5_000 if bench_scale() == "full" else 400
        points = perf.default_runner().map(
            measure_btree_point,
            [{"label": label} for label in VARIANTS],
            common={"n": n},
        )
        out = dict(zip(VARIANTS, points))
        reference = points[0]["results"]
        for point in points:
            assert point["results"] == reference
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "ablation_blocked_btree",
        format_table(
            ["variant", "cycles/lookup", "xlat stall/lookup"],
            [
                [label, round(row["cycles"]), round(row["translation"])]
                for label, row in out.items()
            ],
            title="Ablation: page-blocked B+-tree vs raw binary search (512 MB)",
        ),
    )

    # The blocked tree slashes translation stalls in both modes.
    assert (
        out["blocked tree / seq"]["translation"]
        < 0.5 * out["binary search / seq"]["translation"]
    )
    assert (
        out["blocked tree / coro"]["translation"]
        < 0.5 * out["binary search / coro"]["translation"]
    )
    # And the combination (blocked tree + interleaving) is the fastest.
    fastest = min(out.items(), key=lambda item: item[1]["cycles"])[0]
    assert fastest == "blocked tree / coro"
