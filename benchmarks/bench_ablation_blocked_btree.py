"""Ablation (Section 6): a page-blocked B+-tree to tame TLB misses.

Paper proposal: "introduce a B+-tree index with page-sized nodes on top
of the sorted array... the corresponding address translations hit in
the TLB most of the time, contrary to [plain binary search, which]
thrashes the TLB incurring expensive page walks." Both alternatives are
combined with interleaving.
"""

import numpy as np

from repro.analysis import bench_scale, format_table, warm_llc_resident
from repro.config import HASWELL
from repro.indexes.btree_blocked import BlockedBTree, blocked_lookup_stream
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving import BulkLookup, get_executor
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem

ARRAY_BYTES = 512 << 20


def test_ablation_blocked_btree_vs_binary_search(benchmark, record_table):
    def compute():
        n = 5_000 if bench_scale() == "full" else 400
        allocator = AddressSpaceAllocator()
        array = int_array_of_bytes(allocator, "array", ARRAY_BYTES)
        tree = BlockedBTree(allocator, "btree", array)
        rng = np.random.RandomState(0)
        probes = [int(v) for v in rng.randint(0, array.size, n)]
        warm = [int(v) for v in rng.randint(0, array.size, n)]

        tree_stream = lambda v, il: blocked_lookup_stream(tree, v, il)
        variants = {
            "binary search / seq": (
                "Baseline", lambda vs: BulkLookup.sorted_array(array, vs), None
            ),
            "binary search / coro": (
                "CORO", lambda vs: BulkLookup.sorted_array(array, vs), 6
            ),
            "blocked tree / seq": (
                "sequential", lambda vs: BulkLookup.stream(tree_stream, vs), None
            ),
            "blocked tree / coro": (
                "CORO", lambda vs: BulkLookup.stream(tree_stream, vs), 6
            ),
        }
        out = {}
        reference = None
        for label, (name, tasks_of, group) in variants.items():
            executor = get_executor(name)
            memory = MemorySystem(HASWELL)
            warm_llc_resident(memory, [tree.region])
            executor.run(
                tasks_of(warm), ExecutionEngine(HASWELL, memory), group_size=group
            )
            engine = ExecutionEngine(HASWELL, memory)
            tmam0 = engine.tmam
            results = executor.run(tasks_of(probes), engine, group_size=group)
            walks = memory.tlb.stats.walks
            out[label] = {
                "cycles": engine.clock / n,
                "translation": tmam0.translation_stall_cycles / n,
                "walks_total": walks,
                "results": results,
            }
            if reference is None:
                reference = results
            assert results == reference
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "ablation_blocked_btree",
        format_table(
            ["variant", "cycles/lookup", "xlat stall/lookup"],
            [
                [label, round(row["cycles"]), round(row["translation"])]
                for label, row in out.items()
            ],
            title="Ablation: page-blocked B+-tree vs raw binary search (512 MB)",
        ),
    )

    # The blocked tree slashes translation stalls in both modes.
    assert (
        out["blocked tree / seq"]["translation"]
        < 0.5 * out["binary search / seq"]["translation"]
    )
    assert (
        out["blocked tree / coro"]["translation"]
        < 0.5 * out["binary search / coro"]["translation"]
    )
    # And the combination (blocked tree + interleaving) is the fastest.
    fastest = min(out.items(), key=lambda item: item[1]["cycles"])[0]
    assert fastest == "blocked tree / coro"
