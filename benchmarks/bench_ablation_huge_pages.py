"""Ablation (Section 6): huge pages as the other TLB-miss remedy.

"We could also use large or huge pages, but this alternative requires
special privileges, manual configuration, or dedicated system calls...
Nevertheless, both alternatives can be combined with interleaving."
With 2 MB pages the STLB span grows 512x, so the page-walk storms of
Section 5.4.3 disappear; the remaining DRAM misses are still there for
interleaving to hide — the two remedies compose.
"""

import numpy as np

from repro import perf
from repro.analysis import bench_scale, format_table
from repro.config import HASWELL
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving import BulkLookup, get_executor
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem

ARRAY_BYTES = 512 << 20

PAGES = {"4KB": HASWELL, "2MB": HASWELL.replace(page_size=2 << 20)}
MODES = {"seq": ("Baseline", None), "coro": ("CORO", 6)}


def measure_page_point(page_label: str, mode: str, n: int) -> dict:
    """One (page size, mode) cell, keyed by label so the args pickle."""
    arch = PAGES[page_label]
    name, group = MODES[mode]
    allocator = AddressSpaceAllocator(page_size=arch.page_size)
    array = int_array_of_bytes(allocator, "array", ARRAY_BYTES)
    rng = np.random.RandomState(0)
    probes = [int(v) for v in rng.randint(0, array.size, n)]
    warm = [int(v) for v in rng.randint(0, array.size, n)]
    executor = get_executor(name)
    memory = MemorySystem(arch)
    executor.run(
        BulkLookup.sorted_array(array, warm),
        ExecutionEngine(arch, memory),
        group_size=group,
    )
    engine = ExecutionEngine(arch, memory)
    executor.run(
        BulkLookup.sorted_array(array, probes), engine, group_size=group
    )
    return {
        "cycles": engine.clock / n,
        "translation": engine.tmam.translation_stall_cycles / n,
    }


def test_ablation_huge_pages(benchmark, record_table):
    def compute():
        n = 4_000 if bench_scale() == "full" else 350
        grid = [
            {"page_label": page_label, "mode": mode}
            for page_label in PAGES
            for mode in MODES
        ]
        points = perf.default_runner().map(measure_page_point, grid, common={"n": n})
        rows = []
        metrics = {}
        for spec, point in zip(grid, points):
            key = (spec["page_label"], spec["mode"])
            metrics[key] = (point["cycles"], point["translation"])
            rows.append(
                [*key, round(point["cycles"]), round(point["translation"])]
            )
        return rows, metrics

    rows, metrics = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "ablation_huge_pages",
        format_table(
            ["pages", "mode", "cycles/search", "xlat stall/search"],
            rows,
            title="Ablation: 4 KB vs 2 MB pages (512 MB array)",
        ),
    )
    # Huge pages eliminate nearly all translation stalls in both modes.
    for mode in ("seq", "coro"):
        assert metrics[("2MB", mode)][1] < 0.15 * metrics[("4KB", mode)][1], mode
    # The remedies compose: huge pages + interleaving is the fastest cell.
    fastest = min(metrics.items(), key=lambda item: item[1][0])[0]
    assert fastest == ("2MB", "coro")
    # Interleaving still pays off under huge pages (DRAM misses remain).
    assert metrics[("2MB", "coro")][0] < 0.6 * metrics[("2MB", "seq")][0]
