"""Control-plane benchmark: the adaptive controller vs every static arm.

The ``phase-shift`` scenario is built so no single configuration is
right everywhere: bursty arrivals alternate with deep lulls, and the
``phase-shift`` fault profile packs latency spikes and LFB shrink
windows into horizon quarters two and four while quarters one and three
run clean. The adaptive controller rolls tumbling windows over the run
and moves the serving knobs — batch deadline, Inequality-1 group size,
overflow lane — as the regime changes. Asserted claims:

* the headline: the controller's median-over-seeds p99 beats the
  *best* static technique/group-size configuration — every point of
  the static grid served with the controller disabled and everything
  else identical. A p99 over a few hundred requests is a noisy order
  statistic, so the claim is a median across seeded replays, not one
  draw;
* the comparison is apples-to-apples: every arm at a given seed
  replays the identical fault schedule (the horizon is a pure function
  of the offered rate, which the grid does not vary);
* the decision stream is deterministic: the same seed replays the
  same ``control.window`` events bit for bit;
* the controller actually decided things — windows rolled, decisions
  fired, and the actions reference only exported signals.

The adaptive-vs-grid comparison is recorded to
``benchmarks/results/BENCH_control.json`` (schema ``repro.control/1``,
kind ``control_bench``), validated in CI by
``benchmarks/check_bench_schema.py``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import statistics

import pytest

from repro.analysis.reporting import format_table
from repro.control import ACTION_NAMES, SIGNAL_NAMES
from repro.service import get_scenario, run_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCENARIO = "phase-shift"
LOAD = 1.2
#: Seeded replays backing the median claim.
SEEDS = (0, 1, 2)
#: The static grid: every technique/group-size arm the controller is
#: graded against. ``None`` group = the executor's Inequality-1 default.
STATIC_GRID = (
    ("sequential", None),
    ("CORO", None),
    ("CORO", 4),
    ("CORO", 8),
    ("CORO", 16),
)


def _point(doc: dict) -> dict:
    return next(p for p in doc["points"] if p["load_multiplier"] == LOAD)


def _static_scenario(technique: str, group_size: int | None):
    """The registry scenario with the controller off and one arm pinned."""
    scenario = get_scenario(SCENARIO)
    config = dataclasses.replace(
        scenario.config,
        controller=None,
        technique=technique,
        group_size=group_size or 0,
    )
    return dataclasses.replace(scenario, techniques=(technique,), config=config)


@pytest.fixture(scope="module")
def adaptive_runs():
    """One controlled document per seed (the adaptive arm)."""
    return {seed: run_scenario(SCENARIO, seed=seed) for seed in SEEDS}


@pytest.fixture(scope="module")
def static_runs():
    """Per-arm documents of the controller-off grid, per seed."""
    return {
        (technique, group): {
            seed: run_scenario(_static_scenario(technique, group), seed=seed)
            for seed in SEEDS
        }
        for technique, group in STATIC_GRID
    }


@pytest.fixture(scope="module")
def control_doc(adaptive_runs, static_runs):
    """The ``control_bench`` comparison document (the CI artifact)."""
    scenario = get_scenario(SCENARIO)
    adaptive_p99 = [_point(adaptive_runs[seed])["p99"] for seed in SEEDS]
    statics = []
    for (technique, group), runs in static_runs.items():
        p99s = [_point(runs[seed])["p99"] for seed in SEEDS]
        statics.append(
            {
                "technique": technique,
                "group_size": group,
                "p99_by_seed": p99s,
                "median_p99": statistics.median(p99s),
            }
        )
    best = min(statics, key=lambda arm: arm["median_p99"])
    doc = {
        "schema": "repro.control/1",
        "kind": "control_bench",
        "scenario": SCENARIO,
        "fault_profile": scenario.fault_profile,
        "load_multiplier": LOAD,
        "seeds": list(SEEDS),
        "controller": scenario.config.controller.to_dict(),
        "adaptive": {
            "p99_by_seed": adaptive_p99,
            "median_p99": statistics.median(adaptive_p99),
            "decisions_by_seed": [
                _point(adaptive_runs[seed])["control"]["decisions"]
                for seed in SEEDS
            ],
        },
        "statics": statics,
        "best_static": {
            "technique": best["technique"],
            "group_size": best["group_size"],
            "median_p99": best["median_p99"],
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_control.json"
    artifact.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def test_adaptive_beats_best_static(benchmark, record_table, control_doc):
    """The headline: no static technique/group-size point matches the
    controller's median-over-seeds p99 on the phase-shifting scenario."""
    doc = benchmark.pedantic(lambda: control_doc, rounds=1, iterations=1)
    rows = [
        ["adaptive", "-", doc["controller"]["window_cycles"]]
        + doc["adaptive"]["p99_by_seed"]
        + [doc["adaptive"]["median_p99"]]
    ]
    for arm in doc["statics"]:
        rows.append(
            [arm["technique"], arm["group_size"] or "auto", "-"]
            + arm["p99_by_seed"]
            + [arm["median_p99"]]
        )
    record_table(
        "control_p99",
        format_table(
            ["arm", "G", "W"]
            + [f"p99 s{seed}" for seed in doc["seeds"]]
            + ["median"],
            rows,
            title=(
                f"adaptive controller vs static grid on {doc['scenario']} "
                f"(load {doc['load_multiplier']})"
            ),
        ),
    )

    assert doc["adaptive"]["median_p99"] < doc["best_static"]["median_p99"], (
        doc["adaptive"],
        doc["statics"],
    )


def test_identical_fault_schedule_across_arms(adaptive_runs, static_runs):
    """Every arm at a seed replays one schedule: the grid varies only
    technique/group size, never the offered rate or the horizon."""
    for seed in SEEDS:
        events = {("adaptive", None): _point(adaptive_runs[seed])["fault_events"]}
        for arm, runs in static_runs.items():
            events[arm] = _point(runs[seed])["fault_events"]
        assert len(set(events.values())) == 1, (seed, events)


def test_decision_stream_is_deterministic(adaptive_runs):
    """Same scenario, same seed: the same document — including every
    ``control.window`` event — bit for bit."""
    replay = run_scenario(SCENARIO, seed=SEEDS[0])
    assert replay == adaptive_runs[SEEDS[0]]
    control = _point(replay)["control"]
    assert control == _point(adaptive_runs[SEEDS[0]])["control"]


def test_controller_fired_and_windows_tile(adaptive_runs):
    """The controller rolled windows over the whole run, decided things,
    and every record speaks the exported signal/action vocabulary."""
    for seed, doc in adaptive_runs.items():
        assert doc["schema"] == "repro.control/1"
        assert doc["base_schema"] == "repro.chaos/1"
        control = _point(doc)["control"]
        assert control["decisions"] > 0, (seed, control["decisions"])
        width = control["window_cycles"]
        for position, window in enumerate(control["windows"]):
            assert window["window"] == position
            assert window["start"] == position * width
            assert window["end"] == window["start"] + width
            assert set(window["signals"]) == set(SIGNAL_NAMES)
            assert set(window["actions"]) <= set(ACTION_NAMES)
            assert window["reason"]
