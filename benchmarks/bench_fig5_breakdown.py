"""Figure 5: TMAM execution-time breakdown per implementation and size.

Paper claims: memory stalls dominate std/Baseline beyond the LLC and
are largely removed by interleaving; AMAC and CORO trade them for more
retiring cycles (their switch instructions); GP's residual stalls grow
from ~32 MB because ten line-fill buffers cannot cover its group.
"""

from repro.analysis import format_size, format_table
from repro.sim.tmam import CATEGORIES

LLC = 25 << 20


def test_fig5_execution_breakdown(benchmark, record_table, int_sweep):
    def compute():
        rows = []
        per_point = {}
        for technique, points in int_sweep["points"].items():
            for point in points:
                cats = point.cycles_by_category_per_search
                per_point[(technique, point.size_bytes)] = cats
                rows.append(
                    [
                        technique,
                        format_size(point.size_bytes),
                        *(round(cats[c]) for c in CATEGORIES),
                        round(point.cycles_per_search),
                    ]
                )
        return rows, per_point

    rows, per_point = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_table(
        "fig5_breakdown",
        format_table(
            ["technique", "size", *CATEGORIES, "total"],
            rows,
            title="Figure 5: cycles/search by TMAM category",
        ),
    )

    sizes = int_sweep["sizes"]
    large = sizes[-1]
    small = sizes[0]

    # Memory stalls dominate sequential execution beyond the LLC.
    for technique in ("std", "Baseline"):
        cats = per_point[(technique, large)]
        assert cats["Memory"] > 0.55 * sum(cats.values()), technique

    # Interleaving removes most of them...
    baseline_memory = per_point[("Baseline", large)]["Memory"]
    for technique in ("GP", "AMAC", "CORO"):
        assert per_point[(technique, large)]["Memory"] < 0.55 * baseline_memory

    # ...at the price of more retiring cycles for AMAC/CORO (their
    # instruction overhead, Section 5.4.4).
    baseline_retiring = per_point[("Baseline", large)]["Retiring"]
    for technique in ("AMAC", "CORO"):
        assert per_point[(technique, large)]["Retiring"] > 2 * baseline_retiring

    # GP's retiring overhead is the smallest of the three techniques.
    assert (
        per_point[("GP", large)]["Retiring"]
        < per_point[("AMAC", large)]["Retiring"]
    )

    # std wastes slots on bad speculation; Baseline does not.
    assert per_point[("std", small)]["Bad Speculation"] > 10
    assert per_point[("Baseline", small)]["Bad Speculation"] == 0
