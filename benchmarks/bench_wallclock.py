"""Host wall-clock benchmark for the ``repro.perf`` layer itself.

Every other file in this suite measures *simulated* cycles, which the
perf layer must leave bit-identical. This one measures what the layer is
allowed to change: host seconds. It times the Figure 7 quick grid four
ways — serial, parallel across worker processes, replayed from a warm
result cache, and through the trace-compiled executor twins — checks
that all four produce identical simulated results, and writes the
timings (plus micro-timings of the optimized hot loops) to
``benchmarks/results/BENCH_wallclock.json`` under the
``repro.wallclock/1`` schema.

Assertions are calibrated to the host:

* cache-warm replay must beat a cold run by >= 10x everywhere — replay
  does no simulation, so this holds on any machine;
* the parallel-vs-serial speedup (>= 2.5x at 4 workers) is only
  asserted when the host actually has >= 4 CPUs. ``host_cpus`` is
  recorded in the artifact so CI trend tracking can interpret the
  speedup field; on smaller hosts the assertion degrades to a serial
  floor (>= 0.5x) instead of disappearing — parallel mode must stay
  correct and must not collapse, even when it cannot be faster;
* the compiled-engine sweep must beat the serial generator sweep by
  >= 5x on every host (single-process replay vs single-process
  generators — no CPU-count dependence), with schedule staging warmed
  first and reported separately in ``micro_timings_s``
  (``schedule_compile_s`` vs ``compiled_replay_s``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time

from repro import perf
from repro.analysis import lookups_per_point, measure_binary_search
from repro.interleaving.compiled import (
    compiled_stats,
    compiled_timings,
    reset_compiled_stats,
)
from repro.config import HASWELL
from repro.sim import ExecutionEngine
from repro.sim.cache import SetAssociativeCache
from repro.sim.events import Compute, Load
from repro.sim.memory import MemorySystem

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCHEMA = "repro.wallclock/1"

#: The Figure 7 grid at wall-clock-friendly size: every interleaving
#: technique across a band of group sizes on the 256 MB array.
GRID_TECHNIQUES = ("GP", "AMAC", "CORO")
GRID_GROUPS = (2, 4, 6, 8)


def _grid() -> list[dict]:
    return [
        {"size_bytes": 256 << 20, "technique": technique, "group_size": g}
        for technique in GRID_TECHNIQUES
        for g in GRID_GROUPS
    ]


def _point_fingerprint(point) -> tuple:
    """The simulated outcome of one point, reduced to comparable data."""
    return (
        point.technique,
        point.group_size,
        point.cycles_per_search,
        point.tmam.cpi,
        tuple(sorted(point.loads_per_search.items())),
    )


def _timed_sweep(jobs: int, cache, grid: list[dict], n: int, engine=None):
    runner = perf.SweepRunner(jobs=jobs, cache=cache)
    common = {"n_lookups": n}
    if engine is not None:
        common["engine"] = engine
    start = time.perf_counter()
    points = runner.map(measure_binary_search, grid, common=common)
    return time.perf_counter() - start, [_point_fingerprint(p) for p in points]


def _grid_checksum(points: list[tuple]) -> str:
    """Stable digest of a sweep's fingerprints (for cross-mode equality)."""
    return hashlib.sha256(repr(points).encode()).hexdigest()[:16]


def _micro_cache_lookup(repeats: int = 30_000) -> float:
    """Seconds for ``repeats`` L1 lookup/install pairs (the hottest loop)."""
    cache = SetAssociativeCache(HASWELL.l1d, HASWELL.line_size)
    start = time.perf_counter()
    for line in range(repeats):
        if not cache.lookup(line & 0x3FFF):
            cache.install(line & 0x3FFF)
    return time.perf_counter() - start


def _micro_dispatch(repeats: int = 6_000) -> float:
    """Seconds to dispatch a compute/load-heavy instruction stream."""

    def stream():
        for i in range(repeats):
            yield Compute(1, 1)
            yield Load((i * 64) & 0xFFFFF, 8)
        return None

    engine = ExecutionEngine(HASWELL, MemorySystem(HASWELL))
    start = time.perf_counter()
    engine.run(stream())
    return time.perf_counter() - start


def _micro_translate(repeats: int = 20_000) -> float:
    """Seconds for ``repeats`` TLB translations with page locality."""
    memory = MemorySystem(HASWELL)
    page = HASWELL.page_size
    start = time.perf_counter()
    for i in range(repeats):
        memory.tlb.translate((i % 64) * page + (i & 0xFFF), i)
    return time.perf_counter() - start


def test_wallclock_speedup_and_cache(benchmark, record_table, tmp_path):
    host_cpus = os.cpu_count() or 1
    parallel_jobs = min(4, max(2, host_cpus))
    n = min(lookups_per_point(), 200)
    grid = _grid()

    def compute():
        serial_s, serial_points = _timed_sweep(1, None, grid, n)
        parallel_s, parallel_points = _timed_sweep(parallel_jobs, None, grid, n)
        cache = perf.ResultCache(tmp_path / "wallclock-cache")
        cold_s, cold_points = _timed_sweep(parallel_jobs, cache, grid, n)
        warm_s, warm_points = _timed_sweep(1, cache, grid, n)
        # Compiled engine: one untimed pass stages (and validates) every
        # schedule, then the timed pass measures pure replay — the
        # staging cost is reported on its own in micro_timings_s.
        reset_compiled_stats()
        _timed_sweep(1, None, grid, n, engine="compiled")
        compiled_s, compiled_points = _timed_sweep(
            1, None, grid, n, engine="compiled"
        )
        micro = {
            "cache_lookup_s": _micro_cache_lookup(),
            "engine_dispatch_s": _micro_dispatch(),
            "tlb_translate_s": _micro_translate(),
            "schedule_compile_s": compiled_timings()["schedule_compile_s"],
            "compiled_replay_s": compiled_timings()["replay_s"],
        }
        return {
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "cache_cold_s": cold_s,
            "cache_warm_s": warm_s,
            "compiled_s": compiled_s,
            "points": {
                "serial": serial_points,
                "parallel": parallel_points,
                "cold": cold_points,
                "warm": warm_points,
                "compiled": compiled_points,
            },
            "cache_stats": cache.as_dict(),
            "compiled_stats": compiled_stats(),
            "micro": micro,
        }

    out = benchmark.pedantic(compute, rounds=1, iterations=1)

    # Parallel execution, cache replay, and trace-compiled replay are
    # pure host-side mechanisms: every mode must reproduce the serial
    # sweep bit for bit.
    for mode in ("parallel", "cold", "warm", "compiled"):
        assert out["points"][mode] == out["points"]["serial"], mode
    # Every grid point is compilable: any fallback means the compiled
    # sweep silently measured the generator path.
    assert out["compiled_stats"]["fallbacks"] == 0, (
        f"compiled sweep fell back: {out['compiled_stats']['fallbacks_by_reason']}"
    )
    # The warm pass replayed every point instead of simulating.
    assert out["cache_stats"]["hits"] >= len(grid)
    warm_speedup = out["cache_cold_s"] / out["cache_warm_s"]
    assert warm_speedup >= 10, f"warm replay only {warm_speedup:.1f}x faster"
    speedup = out["serial_s"] / out["parallel_s"]
    if host_cpus >= 4:
        assert speedup >= 2.5, f"parallel speedup {speedup:.2f}x at jobs=4"
    else:
        # On small hosts parallel mode can't be faster, but it must not
        # collapse either: worker processes still time-slice the same
        # cores, so the sweep should finish within ~2x of serial. The
        # 0.5x floor brackets the 0.872x measured on the 1-CPU reference
        # host (ROADMAP PR 5) with headroom for scheduler noise — the
        # assertion now arms everywhere instead of silently passing.
        assert speedup >= 0.5, (
            f"parallel sweep {speedup:.2f}x of serial on {host_cpus} "
            f"CPU(s) — worse than the documented serial floor"
        )
    # The compiled path races the serial generator sweep in the same
    # single process, so the >= 5x bar arms on every host — including
    # 1-CPU runners where the parallel assertion degrades to its floor.
    compiled_speedup = out["serial_s"] / out["compiled_s"]
    assert compiled_speedup >= 5, (
        f"compiled engine only {compiled_speedup:.2f}x over serial generators"
    )

    doc = {
        "schema": SCHEMA,
        "host_cpus": host_cpus,
        "jobs": parallel_jobs,
        "grid_points": len(grid),
        "n_lookups": n,
        "serial_s": round(out["serial_s"], 4),
        "parallel_s": round(out["parallel_s"], 4),
        "speedup": round(speedup, 3),
        "cache_cold_s": round(out["cache_cold_s"], 4),
        "cache_warm_s": round(out["cache_warm_s"], 4),
        "cache_warm_speedup": round(warm_speedup, 2),
        "compiled_s": round(out["compiled_s"], 4),
        "compiled_speedup": round(compiled_speedup, 3),
        "compiled_fallbacks": out["compiled_stats"]["fallbacks"],
        "grid_checksum_serial": _grid_checksum(out["points"]["serial"]),
        "grid_checksum_compiled": _grid_checksum(out["points"]["compiled"]),
        "micro_timings_s": {
            name: round(seconds, 5) for name, seconds in out["micro"].items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_wallclock.json"
    artifact.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    rows = [
        ["serial sweep", f"{doc['serial_s']:.2f}"],
        [f"parallel sweep (jobs={parallel_jobs})", f"{doc['parallel_s']:.2f}"],
        ["speedup", f"{doc['speedup']:.2f}x"],
        ["cache cold", f"{doc['cache_cold_s']:.2f}"],
        ["cache warm", f"{doc['cache_warm_s']:.2f}"],
        ["warm speedup", f"{doc['cache_warm_speedup']:.1f}x"],
        ["compiled sweep", f"{doc['compiled_s']:.2f}"],
        ["compiled speedup", f"{doc['compiled_speedup']:.2f}x"],
    ]
    from repro.analysis import format_table

    record_table(
        "wallclock",
        format_table(
            ["phase", "seconds"],
            rows,
            title=f"Host wall-clock: sweep runner + result cache "
            f"({host_cpus} CPUs)",
        ),
    )
