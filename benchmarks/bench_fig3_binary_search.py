"""Figure 3: cycles per binary search, five implementations, int & string.

Paper claims reproduced here:
* sequential implementations (std, Baseline) degrade sharply once the
  array outgrows the 25 MB LLC; interleaved ones degrade gently;
* beyond the LLC: GP fastest (2.7–3.7x over Baseline for ints in the
  paper), CORO and AMAC close together with CORO slightly ahead;
* std (speculative) loses to Baseline in-cache but wins beyond ~16 MB;
* string comparisons de-emphasize cache misses: smaller interleaving
  speedups, smoother growth.
"""

from repro.analysis import format_size, series_table

LLC = 25 << 20


def _series(sweep):
    sizes = sweep["sizes"]
    return sizes, {
        technique: [round(p.cycles_per_search) for p in points]
        for technique, points in sweep["points"].items()
    }


def _beyond_llc(sizes, series, technique):
    return [
        value
        for size, value in zip(sizes, series[technique])
        if size > LLC
    ]


def test_fig3a_int_arrays(benchmark, record_table, int_sweep):
    sizes, series = benchmark.pedantic(
        lambda: _series(int_sweep), rounds=1, iterations=1
    )
    record_table(
        "fig3a_binary_search_int",
        series_table(
            "size",
            [format_size(s) for s in sizes],
            series,
            title="Figure 3a: cycles/search, int arrays "
            f"({int_sweep['scale']} scale)",
        ),
    )
    baseline = _beyond_llc(sizes, series, "Baseline")
    for technique in ("GP", "AMAC", "CORO"):
        curve = _beyond_llc(sizes, series, technique)
        speedups = [b / t for b, t in zip(baseline, curve)]
        # Interleaving wins beyond the LLC (paper: 1.8-3.7x depending on
        # technique).
        assert min(speedups) > 1.4, technique
    gp = _beyond_llc(sizes, series, "GP")
    coro = _beyond_llc(sizes, series, "CORO")
    amac = _beyond_llc(sizes, series, "AMAC")
    assert all(g < c for g, c in zip(gp, coro)), "GP is fastest beyond LLC"
    assert all(c <= a for c, a in zip(coro, amac)), "CORO edges out AMAC"
    # std crosses Baseline near the LLC boundary.
    std = _beyond_llc(sizes, series, "std")
    assert all(s < b for s, b in zip(std, baseline))


def test_fig3b_string_arrays(benchmark, record_table, string_sweep, int_sweep):
    sizes, series = benchmark.pedantic(
        lambda: _series(string_sweep), rounds=1, iterations=1
    )
    record_table(
        "fig3b_binary_search_string",
        series_table(
            "size",
            [format_size(s) for s in sizes],
            series,
            title="Figure 3b: cycles/search, 15-char string arrays "
            f"({string_sweep['scale']} scale)",
        ),
    )
    baseline = _beyond_llc(sizes, series, "Baseline")
    coro = _beyond_llc(sizes, series, "CORO")
    string_speedups = [b / c for b, c in zip(baseline, coro)]
    assert min(string_speedups) > 1.2

    # Strings de-emphasize cache misses: the interleaving speedup is
    # smaller than for integers at comparable sizes (Section 5.3).
    _, int_series = _series(int_sweep)
    int_baseline = _beyond_llc(sizes, int_series, "Baseline")
    int_coro = _beyond_llc(sizes, int_series, "CORO")
    int_speedups = [b / c for b, c in zip(int_baseline, int_coro)]
    assert sum(string_speedups) / len(string_speedups) < (
        sum(int_speedups) / len(int_speedups)
    )


def test_fig3_robustness_ratio(benchmark, record_table, int_sweep):
    """Growth from the smallest to the largest size, per implementation."""

    def compute():
        rows = []
        for technique, points in int_sweep["points"].items():
            first, last = points[0], points[-1]
            rows.append(
                [
                    technique,
                    round(first.cycles_per_search),
                    round(last.cycles_per_search),
                    f"{last.cycles_per_search / first.cycles_per_search:.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    from repro.analysis import format_table

    record_table(
        "fig3_robustness",
        format_table(
            ["technique", "smallest", "largest", "growth"],
            rows,
            title="Figure 3 takeaway: runtime growth across the sweep",
        ),
    )
    growth = {row[0]: float(row[3][:-1]) for row in rows}
    assert growth["CORO"] < growth["Baseline"]
    assert growth["GP"] < growth["Baseline"]
