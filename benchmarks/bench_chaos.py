"""Chaos benchmark: the robustness claim under memory that misbehaves.

The serving benchmark shows CORO's latency knee sits past sequential's
under clean conditions; this sweep injects the full fault cocktail
(latency spikes, shard stalls/crashes, cache flushes, LFB shrinkage)
from a deterministic seeded schedule and re-asks the question. Asserted
claims:

* a ``"none"`` profile run is deterministic and emits a plain
  ``repro.service/1`` document — the chaos machinery is
  pay-for-what-you-use;
* the fault schedule is identical across techniques at each load point
  (same horizon, same seed), so the comparison is apples-to-apples;
* at the top load (3x sequential capacity) CORO's p99 degrades
  strictly less than sequential's — in median across seeds, by both
  the absolute cycle increase and the degradation ratio. A p99 over a
  few hundred requests is a noisy order statistic, and single-seed
  tails under deep overload swing with individual event placements, so
  the claim is asserted on the median of several seeded replays rather
  than one draw;
* the resilience machinery actually fired (faults applied, and
  retry/hedge/degradation responses observed).

The seed-0 faulted sweep is recorded to
``benchmarks/results/BENCH_chaos.json`` (schema ``repro.chaos/1``),
validated in CI by ``benchmarks/check_bench_schema.py``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import statistics

import pytest

from repro.service import run_scenario, render_service_doc, get_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCENARIO = "chaos"
#: Seeded replays backing the degradation claim (median across them).
DEGRADATION_SEEDS = (0, 1, 2)


def _point(doc: dict, technique: str, load: float) -> dict:
    return next(
        p
        for p in doc["points"]
        if p["technique"] == technique and p["load_multiplier"] == load
    )


@pytest.fixture(scope="module")
def chaos_sweep():
    doc = run_scenario(SCENARIO, seed=0)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "BENCH_chaos.json"
    artifact.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


@pytest.fixture(scope="module")
def degradation_runs():
    """(clean, faulted) documents at the top load, one pair per seed."""
    scenario = dataclasses.replace(get_scenario(SCENARIO), loads=(3.0,))
    return [
        (
            run_scenario(scenario, seed=seed, faults="none"),
            run_scenario(scenario, seed=seed),
        )
        for seed in DEGRADATION_SEEDS
    ]


def test_chaos_document_shape(benchmark, record_table, chaos_sweep):
    doc = benchmark.pedantic(lambda: chaos_sweep, rounds=1, iterations=1)
    record_table("chaos_latency", render_service_doc(doc))

    assert doc["schema"] == "repro.chaos/1"
    assert doc["fault_profile"] == "chaos"
    for point in doc["points"]:
        # The schedule landed events inside every point's horizon...
        assert point["fault_events"] > 0
        # ...and the resilience fields are present and well-formed.
        assert point["hedge_wins"] <= point["hedges"]
        assert point["p50"] <= point["p95"] <= point["p99"]


def test_none_profile_is_deterministic_and_clean():
    """The ``"none"`` profile resolves to no injector at all."""
    first = run_scenario("chaos-quick", seed=0, faults="none")
    second = run_scenario("chaos-quick", seed=0, faults="none")
    assert first == second
    assert first["schema"] == "repro.service/1"
    assert "fault_profile" not in first
    assert "fault_events" not in first["points"][0]


def test_same_schedule_across_techniques(chaos_sweep):
    """Each load point replays one schedule for every technique."""
    scenario = get_scenario(SCENARIO)
    for load in scenario.loads:
        events = {
            t: _point(chaos_sweep, t, load)["fault_events"]
            for t in scenario.techniques
        }
        assert len(set(events.values())) == 1, events


def test_coro_degrades_less_than_sequential(degradation_runs):
    """The headline: under the identical fault schedule at 3x sequential
    capacity, CORO's p99 degrades strictly less than sequential's — in
    median across seeded replays, both absolutely and relatively."""
    deltas = {"sequential": [], "CORO": []}
    ratios = {"sequential": [], "CORO": []}
    for clean, faulted in degradation_runs:
        for technique in deltas:
            before = _point(clean, technique, 3.0)["p99"]
            after = _point(faulted, technique, 3.0)["p99"]
            deltas[technique].append(after - before)
            ratios[technique].append(after / before)
    coro_delta = statistics.median(deltas["CORO"])
    seq_delta = statistics.median(deltas["sequential"])
    assert coro_delta < seq_delta, (deltas, ratios)
    assert statistics.median(ratios["CORO"]) < statistics.median(
        ratios["sequential"]
    ), (deltas, ratios)
    # The faults were not a no-op on either side.
    assert seq_delta > 0 and coro_delta > 0, deltas


def test_resilience_machinery_fired(chaos_sweep):
    """The sweep exercised the fault paths, not just configured them."""
    totals = {
        key: sum(p[key] for p in chaos_sweep["points"])
        for key in ("retries", "hedges", "degraded_batches", "outage_delays")
    }
    applied = {}
    for point in chaos_sweep["points"]:
        for kind, count in point["faults_by_kind"].items():
            applied[kind] = applied.get(kind, 0) + count
    assert sum(applied.values()) > 0, applied
    assert sum(totals.values()) > 0, totals
