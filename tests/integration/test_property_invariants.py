"""Property-based invariants of the simulator under random event streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL, scaled
from repro.sim import (
    SUSPEND,
    Compute,
    ExecutionEngine,
    FrameAlloc,
    Load,
    MemorySystem,
    Prefetch,
)
from repro.interleaving import run_interleaved, run_sequential

# Random event generators -------------------------------------------------

_addr = st.integers(min_value=1 << 21, max_value=1 << 30)

_event = st.one_of(
    st.builds(Compute, st.integers(0, 50), st.integers(0, 100)),
    st.builds(Load, _addr, st.sampled_from([1, 4, 8, 16, 64])),
    st.builds(Prefetch, _addr, st.sampled_from([4, 8, 64, 256]),
              st.booleans()),
    st.just(FrameAlloc()),
)


def make_stream(events, result):
    def stream():
        for event in events:
            yield event
        return result

    return stream()


class TestEngineInvariants:
    @given(events=st.lists(_event, max_size=60), result=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_clock_monotone_and_tmam_consistent(self, events, result):
        engine = ExecutionEngine(HASWELL)
        previous = 0
        stream = make_stream(events, result)
        returned = engine.run(stream)
        assert returned == result
        assert engine.clock >= previous
        engine.tmam.check_consistency()
        # Slots never negative.
        assert all(v >= 0 for v in engine.tmam.slots.values())

    @given(events=st.lists(_event, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_lfb_occupancy_bounded(self, events):
        memory = MemorySystem(HASWELL)
        engine = ExecutionEngine(HASWELL, memory)
        engine.run(make_stream(events, None))
        assert memory.lfbs.peak_occupancy <= HASWELL.n_line_fill_buffers

    @given(events=st.lists(_event, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_load_classification_totals(self, events):
        memory = MemorySystem(HASWELL)
        engine = ExecutionEngine(HASWELL, memory)
        engine.run(make_stream(events, None))
        n_loads = sum(
            len(range(e.addr // 64, (e.addr + e.size - 1) // 64 + 1))
            for e in events
            if isinstance(e, Load)
        )
        assert memory.stats.loads == n_loads

    @given(
        events=st.lists(_event, max_size=30),
        factor=st.sampled_from([1, 4, 64]),
    )
    @settings(max_examples=30, deadline=None)
    def test_scaled_arch_runs_same_streams(self, events, factor):
        arch = HASWELL if factor == 1 else scaled(factor)
        engine = ExecutionEngine(arch)
        engine.run(make_stream(events, "ok"))
        engine.tmam.check_consistency()


class TestSchedulingInvariants:
    @given(
        plan=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 1000)),
            min_size=1,
            max_size=25,
        ),
        group=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_interleaved_equals_sequential_for_random_streams(self, plan, group):
        """Any mix of suspension counts and results is policy-invariant."""

        def factory(job, interleave):
            suspensions, payload = job

            def stream():
                for i in range(suspensions if interleave else 0):
                    yield Compute(1, 2)
                    yield Prefetch((1 << 22) + payload * 64 + i * 64, 8)
                    yield SUSPEND
                yield Compute(1, 1)
                return payload * 3

            return stream()

        seq = run_sequential(ExecutionEngine(HASWELL), factory, plan)
        inter = run_interleaved(ExecutionEngine(HASWELL), factory, plan, group)
        assert seq == inter == [payload * 3 for _, payload in plan]

    @given(group=st.integers(1, 16), n=st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_every_input_produces_exactly_one_result(self, group, n):
        def factory(value, interleave):
            def stream():
                yield Compute(1, 1)
                if interleave:
                    yield SUSPEND
                return value

            return stream()

        inputs = list(range(n))
        results = run_interleaved(ExecutionEngine(HASWELL), factory, inputs, group)
        assert results == inputs
