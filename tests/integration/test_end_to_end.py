"""End-to-end integration tests across all layers."""

import numpy as np

from repro import (
    HASWELL,
    INVALID_CODE,
    AddressSpaceAllocator,
    ColumnTable,
    ExecutionEngine,
    binary_search_coro,
    csb_lookup_stream,
    int_array_of_bytes,
    run_interleaved,
    run_sequential,
)
from repro.columnstore import EncodedColumn, run_in_predicate
from repro.indexes import ImplicitCSBTree
from repro.sim.memory import MemorySystem
from repro.workloads.tpcds import make_q8_workload


class TestQ8EndToEnd:
    def test_q8_all_strategies_same_answer(self):
        workload = make_q8_workload(AddressSpaceAllocator(), n_rows=3_000, seed=1)
        counts = set()
        for strategy in ("sequential", "interleaved", "gp", "amac"):
            results = workload.table.query_in(
                ExecutionEngine(HASWELL), "ca_zip", workload.predicates,
                strategy=strategy,
            )
            counts.add(sum(r.rows.size for r in results.values()))
        assert counts == {workload.expected_matches}


class TestMixedIndexInterleaving:
    def test_heterogeneous_streams_in_one_group(self):
        """Coroutines from different index types interleave together —
        the schedulers are lookup-agnostic (Section 4)."""
        alloc = AddressSpaceAllocator()
        array = int_array_of_bytes(alloc, "arr", 1 << 20)
        tree = ImplicitCSBTree(alloc, "tree", 50_000)
        jobs = []
        for i in range(40):
            if i % 2 == 0:
                jobs.append(("array", i * 997 % array.size))
            else:
                jobs.append(("tree", i * 1231 % 50_000))

        def factory(job, interleave):
            kind, value = job
            if kind == "array":
                return binary_search_coro(array, value, interleave)
            return csb_lookup_stream(tree, value, interleave)

        seq = run_sequential(ExecutionEngine(HASWELL), factory, jobs)
        inter = run_interleaved(ExecutionEngine(HASWELL), factory, jobs, 6)
        assert seq == inter
        for job, result in zip(jobs, seq):
            assert result == job[1]


class TestRobustnessClaim:
    """The headline claim: interleaving makes lookups robust to size."""

    def test_interleaved_degrades_less_than_sequential(self):
        from repro.analysis import measure_binary_search

        small, large = 1 << 20, 256 << 20
        seq_growth = (
            measure_binary_search(large, "Baseline", n_lookups=150).cycles_per_search
            / measure_binary_search(small, "Baseline", n_lookups=150).cycles_per_search
        )
        coro_growth = (
            measure_binary_search(large, "CORO", n_lookups=150).cycles_per_search
            / measure_binary_search(small, "CORO", n_lookups=150).cycles_per_search
        )
        # 256x more data: sequential blows up several-fold, interleaved
        # grows far more gently (Figure 3).
        assert seq_growth > 2 * coro_growth

    def test_query_response_robustness(self):
        from repro.analysis import measure_query

        def growth(strategy):
            small = measure_query(
                1 << 20, "main", strategy, n_predicates=400, n_rows=100_000
            )
            large = measure_query(
                256 << 20, "main", strategy, n_predicates=400, n_rows=100_000
            )
            return large.locate_cycles / small.locate_cycles

        assert growth("interleaved") < growth("sequential")


class TestFullColumnLifecycle:
    def test_insert_merge_query_insert_query(self):
        table = ColumnTable(AddressSpaceAllocator(), "orders", ["item"])
        rng = np.random.RandomState(11)
        first_batch = rng.randint(0, 400, 500)
        table.insert_rows([{"item": int(v)} for v in first_batch])
        table.merge()
        second_batch = rng.randint(300, 700, 200)
        table.insert_rows([{"item": int(v)} for v in second_batch])

        predicates = rng.randint(0, 700, 30).tolist()
        results = table.query_in(
            ExecutionEngine(HASWELL), "item", predicates, strategy="interleaved"
        )
        found = sum(r.rows.size for r in results.values())
        wanted = set(predicates)
        expected = sum(int(v) in wanted for v in first_batch) + sum(
            int(v) in wanted for v in second_batch
        )
        assert found == expected

        table.merge()  # second merge folds the new delta in
        results = table.query_in(
            ExecutionEngine(HASWELL), "item", predicates, strategy="gp"
        )
        assert results["main"].rows.size == expected


class TestStatisticsConsistency:
    def test_tmam_consistent_after_full_workload(self):
        alloc = AddressSpaceAllocator()
        column = EncodedColumn.from_values(
            alloc, "c", np.random.RandomState(0).randint(0, 500, 2_000)
        )
        engine = ExecutionEngine(HASWELL)
        run_in_predicate(engine, column, list(range(0, 600, 7)), strategy="interleaved")
        engine.tmam.check_consistency()

    def test_lfb_never_overflows_under_gp(self):
        from repro.interleaving import gp_binary_search_bulk

        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "arr", 64 << 20)
        memory = MemorySystem(HASWELL)
        engine = ExecutionEngine(HASWELL, memory)
        gp_binary_search_bulk(engine, table, list(range(0, 10**6, 9973)), 12)
        assert memory.lfbs.peak_occupancy <= HASWELL.n_line_fill_buffers
