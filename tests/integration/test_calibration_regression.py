"""Calibration regression: pin the reproduced ratios of the paper.

These tests freeze the headline quantitative relationships so that any
future change to the cost model or simulator that silently breaks the
reproduction fails loudly. Tolerances are generous — the claim is the
band, not the digit.
"""

import pytest

from repro.analysis import DEFAULT_GROUP_SIZES, measure_binary_search

N = 250  # lookups per point: enough for stable ratios, fast enough for CI


def cycles(size_mb, technique, **kw):
    return measure_binary_search(
        size_mb << 20, technique, n_lookups=N, **kw
    ).cycles_per_search


class TestStdVsBaseline:
    def test_std_slower_in_cache(self):
        """Paper: bad speculation penalizes std while data is cached."""
        ratio = cycles(1, "std") / cycles(1, "Baseline")
        assert 1.0 < ratio < 1.35

    def test_crossover_beyond_llc(self):
        """Paper: 'std runs faster than Baseline for arrays larger than
        16 MB' — speculation beats waiting for DRAM."""
        assert cycles(64, "std") / cycles(64, "Baseline") < 0.95
        assert cycles(256, "std") / cycles(256, "Baseline") < 0.95


class TestInterleavingSpeedups:
    """Beyond-LLC speedups over Baseline (paper: GP 2.7-3.7x,
    CORO 2.0-2.4x, AMAC 1.8-2.3x for ints)."""

    @pytest.fixture(scope="class")
    def at_256mb(self):
        return {
            technique: cycles(256, technique)
            for technique in ("Baseline", "GP", "AMAC", "CORO")
        }

    def test_gp_speedup_band(self, at_256mb):
        assert 2.0 < at_256mb["Baseline"] / at_256mb["GP"] < 4.0

    def test_coro_speedup_band(self, at_256mb):
        assert 1.7 < at_256mb["Baseline"] / at_256mb["CORO"] < 2.8

    def test_amac_close_behind_coro(self, at_256mb):
        assert at_256mb["CORO"] <= at_256mb["AMAC"] < 1.1 * at_256mb["CORO"]

    def test_ordering(self, at_256mb):
        assert at_256mb["GP"] < at_256mb["CORO"] <= at_256mb["AMAC"]
        assert at_256mb["AMAC"] < at_256mb["Baseline"]


class TestLlcBoundary:
    def test_sequential_breaks_at_llc(self):
        """The 16->32 MB step crosses the 25 MB LLC: Baseline jumps."""
        assert cycles(32, "Baseline") > 2 * cycles(16, "Baseline")

    def test_interleaved_barely_moves_at_llc(self):
        assert cycles(32, "CORO") < 1.25 * cycles(16, "CORO")


class TestGroupSizeEconomics:
    def test_group_one_is_pure_overhead(self):
        baseline = cycles(256, "Baseline")
        for technique in ("GP", "AMAC", "CORO"):
            assert cycles(256, technique, group_size=1) > baseline, technique

    def test_default_groups_beat_group_two(self):
        for technique in ("GP", "AMAC", "CORO"):
            default = cycles(256, technique)
            narrow = cycles(256, technique, group_size=2)
            assert default < narrow, technique
