"""The content-addressed result cache: keys, replay, invalidation."""

import pickle

import pytest

from repro.analysis import measure_binary_search
from repro.config import HASWELL, scaled
from repro.errors import PerfError
from repro.perf import ResultCache, SweepRunner, Task, code_fingerprint


def add(a, b=0):
    return a + b


class Opaque:
    """Deliberately not canonicalisable (not a dataclass, not JSON-able)."""


class TestKeying:
    def test_key_stable_across_instances(self, tmp_path):
        one = ResultCache(tmp_path / "a", fingerprint="f")
        two = ResultCache(tmp_path / "b", fingerprint="f")
        assert one.key(add, (1,), {"b": 2}) == two.key(add, (1,), {"b": 2})

    def test_key_distinguishes_args(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        base = cache.key(add, (1,), {"b": 2})
        assert cache.key(add, (2,), {"b": 2}) != base
        assert cache.key(add, (1,), {"b": 3}) != base

    def test_key_folds_in_dataclass_args(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        assert cache.key(add, (HASWELL,), {}) != cache.key(add, (scaled(64),), {})

    def test_uncacheable_args_yield_no_key(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        assert cache.key(add, (Opaque(),), {}) is None

    def test_fingerprint_change_invalidates(self, tmp_path):
        before = ResultCache(tmp_path, fingerprint="aaaa")
        after = ResultCache(tmp_path, fingerprint="bbbb")
        key = before.key(add, (1,), {})
        before.put(key, 1)
        hit, _ = after.lookup(after.key(add, (1,), {}))
        assert not hit

    def test_real_code_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()


class TestReplay:
    def test_hit_replays_stored_value(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        key = cache.key(add, (3,), {"b": 4})
        miss, _ = cache.lookup(key)
        assert not miss
        cache.put(key, 7)
        hit, value = cache.lookup(key)
        assert hit and value == 7
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_cached_sweep_equals_fresh_sweep(self, tmp_path):
        grid = [
            {"size_bytes": 1 << 20, "technique": "CORO", "n_lookups": 16},
            {"size_bytes": 1 << 20, "technique": "Baseline", "n_lookups": 16},
        ]
        fresh = SweepRunner(jobs=1).map(measure_binary_search, grid)
        cache = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=cache).map(measure_binary_search, grid)
        replayed = SweepRunner(jobs=1, cache=cache).map(measure_binary_search, grid)
        for a, b in zip(fresh, replayed):
            assert a.cycles_per_search == b.cycles_per_search
            assert a.tmam.cpi == b.tmam.cpi

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        key = cache.key(add, (1,), {})
        cache.put(key, 1)
        path = next(p for p in tmp_path.rglob("*.pkl"))
        path.write_bytes(b"not a pickle")
        hit, _ = cache.lookup(key)
        assert not hit
        assert not path.exists()

    def test_get_raises_on_miss(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        with pytest.raises(PerfError):
            cache.get(cache.key(add, (9,), {}))

    def test_clear_empties_the_store(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        key = cache.key(add, (1,), {})
        cache.put(key, 1)
        cache.clear()
        hit, _ = cache.lookup(key)
        assert not hit
