"""Coarse wall-clock guards over the optimized hot loops.

These are regression *tripwires*, not benchmarks: the bounds are an
order of magnitude above what the loops take today, so they only fire
when a hot path regresses catastrophically (an accidental O(n) scan in
the cache sets, per-event allocation in the dispatch loop, a dropped
fast path in translation). The real timings are recorded by
``benchmarks/bench_wallclock.py``.
"""

import time

from repro.config import HASWELL
from repro.sim import ExecutionEngine
from repro.sim.cache import SetAssociativeCache
from repro.sim.events import Compute, Load
from repro.sim.memory import MemorySystem


def _best_of(fn, repeats=3):
    return min(fn() for _ in range(repeats))


def test_cache_lookup_install_pair_stays_fast():
    cache = SetAssociativeCache(HASWELL.l1d, HASWELL.line_size)

    def run():
        start = time.perf_counter()
        for line in range(20_000):
            if not cache.lookup(line & 0x3FFF):
                cache.install(line & 0x3FFF)
        return time.perf_counter() - start

    assert _best_of(run) < 0.5  # ~10 ms today


def test_engine_dispatch_loop_stays_fast():
    def stream(n):
        for i in range(n):
            yield Compute(1, 1)
            yield Load((i * 64) & 0xFFFFF, 8)
        return None

    def run():
        engine = ExecutionEngine(HASWELL, MemorySystem(HASWELL))
        start = time.perf_counter()
        engine.run(stream(4_000))
        return time.perf_counter() - start

    assert _best_of(run) < 1.5  # ~40 ms today


def test_tlb_translation_stays_fast():
    memory = MemorySystem(HASWELL)
    page = HASWELL.page_size

    def run():
        start = time.perf_counter()
        for i in range(20_000):
            memory.tlb.translate((i % 64) * page + (i & 0xFFF), i)
        return time.perf_counter() - start

    assert _best_of(run) < 0.5  # ~6 ms today
