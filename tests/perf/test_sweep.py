"""The sweep runner: merge order, parallel bit-identity, failure modes."""

import os

import pytest

from repro.analysis import measure_binary_search
from repro.analysis.experiments import TECHNIQUES
from repro.errors import PerfError, SimulationError, WorkloadError
from repro.perf import ResultCache, SweepRunner, Task, resolve_jobs


def double(x):
    return 2 * x


def tag(x, prefix="p"):
    return f"{prefix}{x}"


def boom(x):
    raise WorkloadError(f"bad point {x}")


def die(x):
    os._exit(13)


class TestMergeOrder:
    def test_results_keyed_by_point_not_completion(self):
        # Chunking splits the points across workers; the merged list must
        # follow submission order regardless of which chunk finished first.
        runner = SweepRunner(jobs=4)
        points = list(range(23))
        assert runner.run([Task(double, (x,)) for x in points]) == [
            2 * x for x in points
        ]

    def test_serial_equals_parallel(self):
        serial = SweepRunner(jobs=1).run([Task(tag, (i,)) for i in range(10)])
        parallel = SweepRunner(jobs=3).run([Task(tag, (i,)) for i in range(10)])
        assert serial == parallel

    def test_map_merges_common_kwargs(self):
        runner = SweepRunner(jobs=1)
        out = runner.map(tag, [{"x": 1}, {"x": 2, "prefix": "q"}], common={"prefix": "z"})
        assert out == ["z1", "q2"]

    def test_single_point_avoids_pool(self):
        runner = SweepRunner(jobs=4)
        assert runner.run([Task(double, (21,))]) == [42]
        assert runner.chunks_submitted == 0


class TestSimulatorBitIdentity:
    def test_all_techniques_parallel_equals_serial(self):
        # The acceptance property of the whole perf layer: fanning the
        # simulator across processes changes nothing in the results.
        grid = [
            {"size_bytes": 1 << 20, "technique": technique, "n_lookups": 32}
            for technique in TECHNIQUES
        ]
        serial = SweepRunner(jobs=1).map(measure_binary_search, grid)
        parallel = SweepRunner(jobs=4).map(measure_binary_search, grid)
        for technique, a, b in zip(TECHNIQUES, serial, parallel):
            assert a.cycles_per_search == b.cycles_per_search, technique
            assert a.tmam.cpi == b.tmam.cpi, technique
            assert a.loads_per_search == b.loads_per_search, technique


class TestFailureModes:
    def test_point_exception_propagates_from_worker(self):
        runner = SweepRunner(jobs=2)
        with pytest.raises(WorkloadError, match="bad point 3"):
            runner.run([Task(double, (i,)) for i in range(3)] + [Task(boom, (3,))])

    def test_point_exception_propagates_serially(self):
        with pytest.raises(WorkloadError, match="bad point 0"):
            SweepRunner(jobs=1).run([Task(boom, (0,))])

    def test_dead_worker_raises_instead_of_hanging(self):
        runner = SweepRunner(jobs=2)
        with pytest.raises(SimulationError, match="worker process died"):
            runner.run([Task(die, (i,)) for i in range(4)])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(PerfError):
            SweepRunner(jobs=0)
        with pytest.raises(PerfError):
            resolve_jobs(-2)


class TestCounters:
    def test_run_and_replay_counters(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="t")
        runner = SweepRunner(jobs=1, cache=cache)
        tasks = [Task(double, (x,)) for x in range(5)]
        assert runner.run(tasks) == [0, 2, 4, 6, 8]
        assert runner.points_run == 5
        assert runner.points_replayed == 0
        assert runner.run(tasks) == [0, 2, 4, 6, 8]
        assert runner.points_replayed == 5

    def test_as_dict_and_metrics_registration(self):
        from repro.obs.metrics import MetricsRegistry

        runner = SweepRunner(jobs=1)
        runner.run([Task(double, (1,))])
        registry = MetricsRegistry()
        runner.register_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["perf"]["sweep"]["points_run"] == 1
        assert runner.as_dict()["points_run"] == 1
