"""Legacy group-size spellings canonicalize at every plan surface.

``G=`` / ``g=`` / ``group=`` ride through the same
``canonical_group_size`` funnel the executors use: a deprecation
warning and the same semantics for a lone alias, ``SchedulerError``
for conflicts and for unknown kwargs — in the plan builders exactly as
in ``Executor.run``.
"""

import warnings

import numpy as np
import pytest

from repro.columnstore import EncodedColumn
from repro.config import HASWELL
from repro.errors import SchedulerError
from repro.query import in_predicate_plan
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.engine import ExecutionEngine


@pytest.fixture()
def column():
    return EncodedColumn.from_values(
        AddressSpaceAllocator(), "c", np.arange(2_000)
    )


def encode_group(plan):
    result = plan.execute(ExecutionEngine(HASWELL))
    return result.profile("in_predicate_encode").attrs["group_size"]


class TestPlanBuilderAliases:
    def test_lone_alias_warns_and_applies(self, column):
        with pytest.warns(DeprecationWarning, match="group_size"):
            plan = in_predicate_plan(
                column, [1, 2, 3], strategy="interleaved", G=4
            )
        assert encode_group(plan) == 4

    def test_lowercase_and_group_spellings(self, column):
        with pytest.warns(DeprecationWarning):
            plan = in_predicate_plan(
                column, [1, 2], strategy="interleaved", g=3
            )
        assert encode_group(plan) == 3
        with pytest.warns(DeprecationWarning):
            plan = in_predicate_plan(
                column, [1, 2], strategy="interleaved", group=5
            )
        assert encode_group(plan) == 5

    def test_canonical_spelling_stays_silent(self, column):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan = in_predicate_plan(
                column, [1, 2], strategy="interleaved", group_size=4
            )
        assert encode_group(plan) == 4

    def test_conflicting_spellings_rejected(self, column):
        with pytest.raises(SchedulerError, match="conflicting group sizes"):
            in_predicate_plan(column, [1], group_size=2, G=3)

    def test_agreeing_alias_still_warns_but_passes(self, column):
        with pytest.warns(DeprecationWarning):
            plan = in_predicate_plan(
                column, [1, 2], strategy="interleaved", group_size=4, G=4
            )
        assert encode_group(plan) == 4

    def test_unknown_kwarg_rejected(self, column):
        with pytest.raises(SchedulerError, match="unknown executor kwargs"):
            in_predicate_plan(column, [1], chunk=7)


class TestApiRunPlanAliases:
    def test_alias_reaches_the_probe(self, column):
        from repro.api import run_plan

        with pytest.warns(DeprecationWarning):
            result = run_plan(column, [1, 2, 3], strategy="interleaved", G=4)
        assert result.group_size == 4

    def test_conflict_rejected(self, column):
        from repro.api import run_plan

        with pytest.raises(SchedulerError, match="conflicting group sizes"):
            run_plan(column, [1], group_size=2, group=6)
