"""Unit tests for the ``repro.query`` operator layer."""

import numpy as np
import pytest

from repro.config import HASWELL
from repro.errors import QueryError
from repro.indexes.base import INVALID_CODE
from repro.query import (
    Aggregate,
    DictionaryInner,
    Filter,
    IndexJoin,
    InPredicateEncode,
    QueryPlan,
    Scan,
    SortedArrayInner,
)
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.engine import ExecutionEngine
from repro.workloads.generators import lookup_values, make_table

TABLE_BYTES = 1 << 16


@pytest.fixture()
def table():
    return make_table(AddressSpaceAllocator(), "q/inner", TABLE_BYTES)


@pytest.fixture()
def engine():
    return ExecutionEngine(HASWELL)


def join_plan(table, keys, executor="CORO", **kwargs):
    return QueryPlan(
        IndexJoin(
            Scan.values(keys, label="keys"),
            SortedArrayInner(table),
            executor=executor,
            label="join",
            **kwargs,
        )
    )


class TestScan:
    def test_values_stream_in_batches_at_zero_cost(self, engine):
        plan = QueryPlan(Scan.values([1, 2, 3, 4, 5], batch_size=2))
        result = plan.execute(engine)
        assert result.value == [1, 2, 3, 4, 5]
        profile = result.profile("scan_values")
        assert profile.batches == 3
        assert profile.rows == 5
        assert profile.cycles == 0
        assert engine.clock == 0

    def test_needs_exactly_one_source(self):
        with pytest.raises(QueryError):
            Scan()
        with pytest.raises(QueryError):
            Scan(source=[1], column=object())

    def test_rejects_bad_batch_size(self):
        with pytest.raises(QueryError):
            Scan.values([1], batch_size=0)


class TestFilter:
    def test_drop_misses_drops_invalid_and_none(self, engine):
        child = Scan.values([3, INVALID_CODE, None, 7], label="raw")
        plan = QueryPlan(Filter.drop_misses(child))
        result = plan.execute(engine)
        assert result.value == [3, 7]
        profile = result.profile("filter_found")
        assert profile.attrs["rows_in"] == 4
        assert profile.rows == 2
        assert profile.cycles == 0

    def test_empty_result_batches_are_swallowed(self, engine):
        child = Scan.values([INVALID_CODE, INVALID_CODE], batch_size=1)
        plan = QueryPlan(Filter.drop_misses(child))
        result = plan.execute(engine)
        assert result.value == []
        assert result.profile("filter_found").batches == 0


class TestAggregate:
    def test_count(self, engine):
        plan = QueryPlan(Aggregate(Scan.values([5, 6, 7]), "count"))
        result = plan.execute(engine)
        assert result.value == 3
        assert result.extras["aggregate_count"] == 3

    def test_collect_concatenates_numpy_batches(self, engine):
        class NumpyScan(Scan):
            def run(self, ctx):
                for batch in (np.array([1, 2]), np.array([3])):
                    ctx.emit(self, batch)
                    yield batch

        plan = QueryPlan(Aggregate(NumpyScan(source=[], label="np"), "collect"))
        result = plan.execute(engine)
        assert isinstance(result.value, np.ndarray)
        assert result.value.tolist() == [1, 2, 3]

    def test_cost_model_charges_the_engine(self, engine):
        plan = QueryPlan(
            Aggregate(Scan.values([1, 2]), "count", cost_model=lambda n: 1000)
        )
        result = plan.execute(engine)
        assert result.profile("aggregate_count").cycles > 0
        assert engine.clock >= 1000

    def test_unknown_reduction_rejected(self):
        with pytest.raises(QueryError):
            Aggregate(Scan.values([1]), "median")


class TestIndexJoin:
    def test_probes_through_the_index_path(self, table, engine):
        keys = lookup_values(32, table, seed=1)
        result = join_plan(table, keys).execute(engine)
        profile = result.profile("join")
        assert profile.executor == "CORO"
        assert profile.attrs["batches_via_index"] == 1
        assert "batches_via_fallback" not in profile.attrs
        assert profile.cycles > 0
        # Every key is a table value: all of them match.
        assert len(result.value) == len(keys)
        positions = dict(result.value)
        for key, position in positions.items():
            assert table.value_at(position) == key

    def test_misses_dropped_by_default_kept_on_request(self, table, engine):
        miss = table.value_at(0) - 1
        keys = [table.value_at(0), miss]
        dropped = join_plan(table, keys).execute(ExecutionEngine(HASWELL))
        assert [key for key, _ in dropped.value] == [table.value_at(0)]
        kept = join_plan(table, keys, keep_misses=True).execute(engine)
        assert [value for _, value in kept.value] == [0, INVALID_CODE]

    def test_output_matches_sequential_reference(self, table):
        keys = lookup_values(48, table, seed=2)
        reference = join_plan(table, keys, executor="sequential").execute(
            ExecutionEngine(HASWELL)
        )
        for executor in ("std", "Baseline", "GP", "AMAC", "CORO"):
            result = join_plan(table, keys, executor=executor).execute(
                ExecutionEngine(HASWELL)
            )
            assert result.value == reference.value, executor

    def test_buffer_capacity_must_be_positive(self, table):
        with pytest.raises(QueryError):
            join_plan(table, [1], task_buffer=0)
        with pytest.raises(QueryError):
            join_plan(table, [1], match_buffer=0)

    def test_unconfigured_executor_raises_at_run(self, table, engine):
        plan = join_plan(table, [table.value_at(0)], executor=None)
        with pytest.raises(QueryError, match="no executor"):
            plan.execute(engine)

    def test_empty_outer_completes_and_settles(self, table, engine):
        result = join_plan(table, []).execute(engine)
        assert result.value == []
        assert result.profile("join").batches == 0

    def test_group_alias_spelling_accepted(self, table, engine):
        with pytest.warns(DeprecationWarning):
            plan = join_plan(table, lookup_values(8, table, seed=3), G=2)
        result = plan.execute(engine)
        assert result.profile("join").attrs["group_size"] == 2


class TestDictionaryFallback:
    def test_executor_without_rewrite_falls_back_to_sequential(self, engine):
        from repro.columnstore import EncodedColumn

        column = EncodedColumn.from_values(
            AddressSpaceAllocator(), "c", np.arange(512)
        )
        values = [3, 9, 27]
        join = IndexJoin(
            Scan.values(values, label="keys"),
            DictionaryInner(column),
            executor="std",  # no dictionary rewrite registered for std
            keep_misses=True,
            project=lambda key, code: code,
            label="join",
        )
        result = QueryPlan(join).execute(engine)
        profile = result.profile("join")
        assert profile.attrs["batches_via_fallback"] == 1
        assert profile.executor == "sequential"
        assert result.value == [column.dictionary.locate(v) for v in values]


class TestPlanPlumbing:
    def test_describe_renders_the_tree(self, table):
        plan = join_plan(table, [1])
        text = plan.describe()
        assert "index_join[join]" in text
        assert "└── scan[keys]" in text

    def test_duplicate_labels_disambiguate(self, engine):
        left = Scan.values([1], label="scan_values")
        right = Scan.values([2], label="scan_values")

        class Both(Scan):
            def children(self):
                return (left, right)

            def run(self, ctx):
                for child in (left, right):
                    for batch in child.run(ctx):
                        ctx.emit(self, batch)
                        yield batch

        result = QueryPlan(Both(source=[], label="both")).execute(engine)
        labels = [p.label for p in result.profiles]
        assert "scan_values" in labels and "scan_values#2" in labels

    def test_unknown_profile_label_raises(self, table, engine):
        result = join_plan(table, [table.value_at(0)]).execute(engine)
        with pytest.raises(QueryError):
            result.profile("nope")


class TestInPredicateEncode:
    def test_emits_one_code_per_value_in_order(self, engine):
        from repro.columnstore import EncodedColumn

        column = EncodedColumn.from_values(
            AddressSpaceAllocator(), "c", np.arange(256)
        )
        missing = -5
        values = [10, missing, 200]
        encode = InPredicateEncode(column, values, strategy="sequential")
        result = QueryPlan(encode).execute(engine)
        expected = [column.dictionary.locate(10), INVALID_CODE,
                    column.dictionary.locate(200)]
        assert result.value == expected
        profile = result.profile("in_predicate_encode")
        assert profile.attrs["strategy"] == "sequential"
        assert profile.attrs["group_size"] >= 1
