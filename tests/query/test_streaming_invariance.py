"""Property test: IndexJoin output is invariant to batching and buffers.

The streaming join's bounded task/match buffers and probe batch size
are pure scheduling knobs — whatever capacities and batch boundaries
the plan runs with, the joined output must be the same multiset in the
same outer order, for every paper technique. (Cycles legitimately vary
with batching: smaller probe batches mean smaller interleave groups'
worth of overlap. Only the *relation* is pinned here.)
"""

from hypothesis import given, settings, strategies as st

from repro.config import HASWELL
from repro.query import IndexJoin, QueryPlan, Scan, SortedArrayInner
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.engine import ExecutionEngine
from repro.workloads.generators import make_table

TECHNIQUES = ("std", "Baseline", "GP", "AMAC", "CORO")

_TABLE = make_table(AddressSpaceAllocator(), "prop/inner", 1 << 14)
_DOMAIN_LO = _TABLE.value_at(0)
_DOMAIN_HI = _TABLE.value_at(_TABLE.size - 1)


def run_join(keys, executor, task_buffer, match_buffer, probe_batch):
    plan = QueryPlan(
        IndexJoin(
            Scan.values(keys, batch_size=probe_batch, label="keys"),
            SortedArrayInner(_TABLE),
            executor=executor,
            task_buffer=task_buffer,
            match_buffer=match_buffer,
            keep_misses=True,
            label="join",
        )
    )
    return plan.execute(ExecutionEngine(HASWELL)).value


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        # Straddle the domain edges so hits and misses both occur.
        st.integers(min_value=_DOMAIN_LO - 3, max_value=_DOMAIN_HI + 3),
        min_size=0,
        max_size=40,
    ),
    executor=st.sampled_from(TECHNIQUES),
    task_buffer=st.integers(min_value=1, max_value=4),
    match_buffer=st.integers(min_value=1, max_value=4),
    probe_batch=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
)
def test_output_invariant_to_buffers_and_batches(
    keys, executor, task_buffer, match_buffer, probe_batch
):
    reference = run_join(keys, "sequential", 8, 8, None)
    streamed = run_join(keys, executor, task_buffer, match_buffer, probe_batch)
    assert streamed == reference
