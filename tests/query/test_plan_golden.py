"""Golden-number regression: the plan-backed query pinned across refactors.

``run_in_predicate`` is now a thin shim over the ``repro.query``
operator plan; these values were captured from the two-phase
implementation *before* that refactor (n_predicates=200, group_size=6,
seed 0, in-cache and DRAM-resident dictionary sizes). Every (store,
strategy) combination's total/locate/scan cycle split must stay
bit-identical: the plan charges exactly the events the legacy routine
charged, in the same order, settling inside the same window. If a
change legitimately alters the cost model, recapture these numbers in
the same commit and say why.
"""

import pytest

from repro.analysis.experiments import measure_query

N_PREDICATES = 200
GROUP_SIZE = 6

#: (store, strategy, dict_bytes) -> (total, locate, scan) cycles.
GOLDEN_QUERY_CYCLES = {
    ("main", "sequential", 1 << 20): (364_025, 109_065, 180_000),
    ("main", "sequential", 8 << 20): (402_119, 148_019, 180_000),
    ("main", "interleaved", 1 << 20): (398_411, 143_451, 180_000),
    ("main", "interleaved", 8 << 20): (445_720, 191_620, 180_000),
    ("main", "gp", 1 << 20): (326_091, 71_131, 180_000),
    ("main", "gp", 8 << 20): (345_655, 91_555, 180_000),
    ("main", "amac", 1 << 20): (400_775, 145_815, 180_000),
    ("main", "amac", 8 << 20): (449_278, 195_178, 180_000),
    ("delta", "sequential", 1 << 20): (337_318, 82_198, 180_000),
    ("delta", "sequential", 8 << 20): (613_709, 359_629, 180_000),
    ("delta", "interleaved", 1 << 20): (348_302, 93_182, 180_000),
    ("delta", "interleaved", 8 << 20): (378_002, 123_922, 180_000),
}


class TestGoldenQueryCycles:
    @pytest.mark.parametrize(
        "store,strategy,dict_bytes", sorted(GOLDEN_QUERY_CYCLES)
    )
    def test_plan_cycles_bit_identical_to_legacy(self, store, strategy, dict_bytes):
        point = measure_query(
            dict_bytes,
            store,
            strategy,
            n_predicates=N_PREDICATES,
            group_size=GROUP_SIZE,
        )
        total, locate, scan = GOLDEN_QUERY_CYCLES[(store, strategy, dict_bytes)]
        assert point.total_cycles == total
        assert point.locate_cycles == locate
        assert point.scan_cycles == scan
        # The "other" phase (plan preparation + materialization) is the
        # remainder; pinning all three pins it too, but make the split
        # explicit for the next reader.
        assert point.total_cycles - point.locate_cycles - point.scan_cycles == (
            total - locate - scan
        )
