"""Acceptance: operator internals stay behind the ``repro.query`` facade.

The ``operators`` and ``plan`` submodules are implementation detail —
everything public re-exports through ``repro.query`` (and the package
root). No code outside ``src/repro/query`` may import the submodules
directly, so the layer can be reshaped without sweeping the codebase.
The lint walks ``src``, ``tests``, ``benchmarks``, and ``examples``;
``tests/query`` itself is exempt (white-box unit tests may one day
need the internals, the rest of the repo may not).
"""

import ast
import pathlib

ROOT = pathlib.Path(__file__).resolve().parents[2]

FORBIDDEN_PREFIXES = ("repro.query.operators", "repro.query.plan")

SCAN_DIRS = ("src", "tests", "benchmarks", "examples")


def _exempt(path: pathlib.Path) -> bool:
    relative = path.relative_to(ROOT)
    return relative.parts[:3] in {
        ("src", "repro", "query"),
        ("tests", "query", "test_import_lint.py"),
    }


class TestQueryInternalsStayInternal:
    def test_no_submodule_imports_outside_the_package(self):
        offenders = []
        for scan_dir in SCAN_DIRS:
            base = ROOT / scan_dir
            if not base.exists():
                continue
            for module in sorted(base.rglob("*.py")):
                if _exempt(module):
                    continue
                tree = ast.parse(module.read_text())
                for node in ast.walk(tree):
                    if isinstance(node, ast.ImportFrom):
                        name = node.module or ""
                        if name.startswith(FORBIDDEN_PREFIXES):
                            offenders.append(
                                f"{module.relative_to(ROOT)}: from {name}"
                            )
                    elif isinstance(node, ast.Import):
                        for alias in node.names:
                            if alias.name.startswith(FORBIDDEN_PREFIXES):
                                offenders.append(
                                    f"{module.relative_to(ROOT)}: import {alias.name}"
                                )
        assert not offenders, offenders

    def test_the_facade_exports_everything_the_repo_uses(self):
        import repro.query as query

        for name in query.__all__:
            assert getattr(query, name) is not None
