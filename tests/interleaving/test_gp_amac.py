"""Tests for group prefetching and AMAC bulk binary search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import SchedulerError
from repro.indexes.binary_search import reference_search
from repro.indexes.sorted_array import SortedIntArray, int_array_of_bytes
from repro.interleaving import (
    amac_binary_search_bulk,
    gp_binary_search_bulk,
)
from repro.interleaving.amac import BinarySearchMachine, StepOutcome
from repro.sim import ExecutionEngine, StreamContext
from repro.sim.allocator import AddressSpaceAllocator


def make_table(values):
    return SortedIntArray.from_values(AddressSpaceAllocator(), "t", values)


def make_engine():
    return ExecutionEngine(HASWELL)


class TestGp:
    def test_matches_reference(self):
        values = sorted(set(np.random.RandomState(0).randint(0, 9999, 700)))
        table = make_table(values)
        probes = [int(p) for p in np.random.RandomState(1).randint(-5, 10_005, 97)]
        expected = [reference_search(values, p) for p in probes]
        assert gp_binary_search_bulk(make_engine(), table, probes, 10) == expected

    def test_partial_last_group(self):
        table = make_table(list(range(100)))
        probes = list(range(25))  # not a multiple of the group size
        got = gp_binary_search_bulk(make_engine(), table, probes, 10)
        assert got == probes

    def test_group_of_one(self):
        table = make_table(list(range(64)))
        assert gp_binary_search_bulk(make_engine(), table, [10, 20], 1) == [10, 20]

    def test_invalid_group_size(self):
        table = make_table([1])
        with pytest.raises(SchedulerError):
            gp_binary_search_bulk(make_engine(), table, [1], 0)

    def test_empty_probe_list(self):
        table = make_table([1, 2])
        assert gp_binary_search_bulk(make_engine(), table, [], 4) == []

    def test_gp_prefetches_one_line_per_stream_per_iter(self):
        table = make_table(list(range(1 << 12)))
        engine = make_engine()
        gp_binary_search_bulk(engine, table, list(range(10)), 10)
        # 12 iterations x 10 streams prefetches.
        assert engine.memory.stats.prefetches == 120


class TestAmac:
    def test_matches_reference(self):
        values = sorted(set(np.random.RandomState(2).randint(0, 9999, 700)))
        table = make_table(values)
        probes = [int(p) for p in np.random.RandomState(3).randint(-5, 10_005, 97)]
        expected = [reference_search(values, p) for p in probes]
        assert amac_binary_search_bulk(make_engine(), table, probes, 6) == expected

    def test_results_in_input_order_with_refills(self):
        table = make_table(list(range(512)))
        probes = list(range(0, 512, 7))
        assert amac_binary_search_bulk(make_engine(), table, probes, 4) == probes

    def test_group_of_one(self):
        table = make_table(list(range(64)))
        assert amac_binary_search_bulk(make_engine(), table, [7], 1) == [7]

    def test_invalid_group_size(self):
        table = make_table([1])
        with pytest.raises(SchedulerError):
            amac_binary_search_bulk(make_engine(), table, [1], -1)

    def test_empty_probe_list(self):
        table = make_table([1, 2])
        assert amac_binary_search_bulk(make_engine(), table, [], 4) == []

    def test_machine_switches_after_each_prefetch(self):
        table = make_table(list(range(256)))
        machine = BinarySearchMachine(table)
        machine.start(100)
        engine = make_engine()
        ctx = StreamContext()
        outcomes = []
        while True:
            outcome = machine.step(engine, ctx)
            outcomes.append(outcome)
            if outcome is StepOutcome.DONE:
                break
        # 8 iterations: 8 SWITCH (prefetch), interleaved with CONTINUE
        # (access), then DONE.
        assert outcomes.count(StepOutcome.SWITCH) == 8
        assert outcomes[-1] is StepOutcome.DONE
        assert machine.result == 100


class TestCrossTechniqueEquivalence:
    @given(
        values=st.sets(st.integers(0, 30_000), min_size=2, max_size=400),
        gp_group=st.integers(1, 12),
        amac_group=st.integers(1, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_gp_amac_agree(self, values, gp_group, amac_group):
        values = sorted(values)
        table = make_table(values)
        probes = values[::5] + [min(values) - 1, max(values) + 1]
        expected = [reference_search(values, p) for p in probes]
        assert gp_binary_search_bulk(make_engine(), table, probes, gp_group) == expected
        assert (
            amac_binary_search_bulk(make_engine(), table, probes, amac_group)
            == expected
        )

    def test_performance_ordering_beyond_llc(self):
        """GP < CORO <= AMAC < Baseline for a 64 MB array (Figure 3a)."""
        from repro.indexes.binary_search import (
            binary_search_baseline,
            binary_search_coro,
        )
        from repro.interleaving import run_interleaved, run_sequential
        from repro.sim.memory import MemorySystem

        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "big", 64 << 20)
        probes = np.random.RandomState(0).randint(0, table.size, 150).tolist()
        warm = np.random.RandomState(9).randint(0, table.size, 150).tolist()

        def measure(fn):
            mem = MemorySystem(HASWELL)
            fn(ExecutionEngine(HASWELL, mem), warm)
            engine = ExecutionEngine(HASWELL, mem)
            fn(engine, probes)
            return engine.clock

        baseline = measure(
            lambda e, vs: run_sequential(
                e, lambda v, il: binary_search_baseline(table, v), vs
            )
        )
        gp = measure(lambda e, vs: gp_binary_search_bulk(e, table, vs, 10))
        amac = measure(lambda e, vs: amac_binary_search_bulk(e, table, vs, 6))
        coro = measure(
            lambda e, vs: run_interleaved(
                e, lambda v, il: binary_search_coro(table, v, il), vs, 6
            )
        )
        assert gp < coro <= amac < baseline
