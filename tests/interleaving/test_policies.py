"""Tests for policy selection corners: tie-breaking and candidate
restriction (the Delta-dictionary CORO rule)."""

import dataclasses

import pytest

from repro.config import HASWELL
from repro.interleaving.policies import (
    ADAPTIVE_CANDIDATES,
    _rank_candidates,
    choose_policy_for_bytes,
)
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator

BIG = 256 << 20  # comfortably past the Haswell LLC


def uniform_cost_arch():
    """An arch where every technique's switch cost is identical, so the
    Inequality-1 ranking is a pure tie."""
    cost = dataclasses.replace(
        HASWELL.cost,
        gp_switch=HASWELL.cost.coro_switch,
        amac_switch=HASWELL.cost.coro_switch,
    )
    return dataclasses.replace(HASWELL, cost=cost)


class TestTieBreaking:
    def test_equal_costs_pick_the_first_candidate(self):
        # _rank_candidates keeps the incumbent on ties (strict <), so
        # candidate order is the tie-break — paper order, GP first.
        arch = uniform_cost_arch()
        technique, _, _ = _rank_candidates(arch, ADAPTIVE_CANDIDATES)
        assert technique == ADAPTIVE_CANDIDATES[0] == "gp"

    def test_candidate_order_decides_ties(self):
        arch = uniform_cost_arch()
        reversed_order = tuple(reversed(ADAPTIVE_CANDIDATES))
        technique, _, _ = _rank_candidates(arch, reversed_order)
        assert technique == reversed_order[0] == "coro"

    def test_tie_break_is_deterministic_through_choose_policy(self):
        arch = uniform_cost_arch()
        policies = [
            choose_policy_for_bytes(arch, BIG, 10_000, technique=None)
            for _ in range(3)
        ]
        assert len({p.technique for p in policies}) == 1
        assert policies[0].technique == "GP"

    def test_haswell_costs_are_not_tied(self):
        # On the real calibration GP's switch is strictly cheapest, so
        # the tie-break never has to fire for the default arch.
        technique, _, cost = _rank_candidates(HASWELL, ADAPTIVE_CANDIDATES)
        others = [
            _rank_candidates(HASWELL, (candidate,))[2]
            for candidate in ADAPTIVE_CANDIDATES
            if candidate != technique
        ]
        assert all(cost < other for other in others)

    def test_empty_candidate_set_rejected(self):
        with pytest.raises(ValueError, match="no candidate"):
            _rank_candidates(HASWELL, ())

    def test_single_candidate_restriction_is_honoured(self):
        policy = choose_policy_for_bytes(
            HASWELL, BIG, 10_000, technique=None, candidates=("coro",)
        )
        assert policy.technique == "CORO" and policy.interleave


class TestDeltaDictionaryRestriction:
    """Delta dictionaries only have a coroutine lookup (their extra
    suspension point has no GP/AMAC rewrite), so locate_policy must
    restrict the adaptive candidates to CORO."""

    @staticmethod
    def _column(kind):
        import numpy as np

        from repro.columnstore import EncodedColumn

        alloc = AddressSpaceAllocator()
        dictionary = kind.implicit(alloc, "dict", BIG)
        return EncodedColumn(dictionary, np.array([0, 1, 2]), alloc, "col")

    def test_delta_policy_is_coro_even_where_gp_wins_on_main(self):
        from repro.columnstore import DeltaDictionary, MainDictionary

        # On the tied cost model GP wins the open (Main) ranking purely
        # by candidate order — yet Delta still must come out CORO,
        # proving the restriction is a candidate-set cut, not a ranking
        # outcome that could flip with calibration.
        engine = ExecutionEngine(uniform_cost_arch())
        main_policy = self._column(MainDictionary).locate_policy(engine, 10_000)
        delta_policy = self._column(DeltaDictionary).locate_policy(engine, 10_000)
        assert main_policy.interleave and main_policy.technique == "GP"
        assert delta_policy.interleave and delta_policy.technique == "CORO"

    def test_calibrated_haswell_picks_coro_for_both_kinds(self):
        from repro.columnstore import DeltaDictionary, MainDictionary

        # The real calibration happens to rank CORO cheapest anyway
        # (lowest residual stall at the LFB cap), so Main and Delta
        # agree — the restriction only matters when they would not.
        engine = ExecutionEngine(HASWELL)
        for kind in (MainDictionary, DeltaDictionary):
            policy = self._column(kind).locate_policy(engine, 10_000)
            assert policy.interleave and policy.technique == "CORO"

    def test_small_delta_still_falls_back_to_sequential(self):
        import numpy as np

        from repro.columnstore import DeltaDictionary, EncodedColumn

        alloc = AddressSpaceAllocator()
        delta_dict = DeltaDictionary.from_values(alloc, "dd", [3, 1, 2])
        column = EncodedColumn(delta_dict, np.array([0, 1, 2]), alloc, "c")
        policy = column.locate_policy(ExecutionEngine(HASWELL), 10_000)
        assert not policy.interleave
        assert policy.executor_name == "sequential"
