"""Tests for the executor protocol, registry, and bulk pipeline."""

import ast
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import SchedulerError, WorkloadError
from repro.indexes.csb_tree import CSBTree
from repro.indexes.hash_table import ChainedHashTable
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving.executor import (
    EXECUTOR_REGISTRY,
    WORKLOAD_KINDS,
    BulkLookup,
    BulkPipeline,
    CoroExecutor,
    Executor,
    executor_names,
    executors_supporting,
    get_executor,
    paper_techniques,
)
from repro.obs.spans import SpanRecorder
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator

ROOT = pathlib.Path(__file__).parent.parent.parent


def small_array(nbytes=1 << 20):
    return int_array_of_bytes(AddressSpaceAllocator(), "arr", nbytes)


class TestRegistry:
    def test_paper_techniques_in_paper_order(self):
        assert paper_techniques() == ("std", "Baseline", "GP", "AMAC", "CORO")

    def test_registry_holds_spp_and_sequential_too(self):
        names = executor_names()
        assert "SPP" in names and "sequential" in names

    def test_lookup_is_case_insensitive_and_alias_aware(self):
        assert get_executor("coro") is get_executor("CORO")
        assert get_executor("interleaved") is get_executor("CORO")
        assert get_executor("baseline").name == "Baseline"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(WorkloadError, match="registered"):
            get_executor("nope")

    def test_every_registered_executor_satisfies_protocol(self):
        for name in executor_names():
            assert isinstance(get_executor(name), Executor)

    def test_supports_matches_workload_kind_queries(self):
        for kind in WORKLOAD_KINDS:
            for executor in executors_supporting(kind):
                assert executor.supports(kind)
        coro_kinds = [
            kind for kind in WORKLOAD_KINDS if get_executor("CORO").supports(kind)
        ]
        assert coro_kinds == list(WORKLOAD_KINDS)  # coroutines cover everything

    def test_unsupported_workload_rejected(self):
        table = ChainedHashTable(AddressSpaceAllocator(), "h", n_buckets=8)
        table.build([1, 2], [10, 20])
        with pytest.raises(WorkloadError, match="does not support"):
            get_executor("GP").run(
                BulkLookup.hash_probe(table, [1]), ExecutionEngine(HASWELL)
            )


class TestBulkLookup:
    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError, match="workload kind"):
            BulkLookup("btree", None, (1,))

    def test_stream_needs_factory(self):
        with pytest.raises(WorkloadError, match="factory"):
            BulkLookup("stream", None, (1,))

    def test_batches_preserve_order_and_cover_all(self):
        tasks = BulkLookup.sorted_array(small_array(), range(10))
        batches = list(tasks.batches(4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [v for b in batches for v in b.inputs] == list(range(10))

    def test_nonpositive_batch_rejected(self):
        tasks = BulkLookup.sorted_array(small_array(), [1])
        with pytest.raises(SchedulerError):
            list(tasks.batches(0))


class TestExecutorEquivalence:
    """Every executor agrees with run_sequential on every workload it
    supports — the refactor's correctness property."""

    @given(seed=st.integers(0, 2**16), group_size=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_sorted_array_equivalence(self, seed, group_size):
        array = small_array(1 << 20)
        rng = np.random.RandomState(seed)
        probes = [int(v) for v in rng.randint(0, array.size, 40)]
        tasks = BulkLookup.sorted_array(array, probes)
        expected = get_executor("sequential").run(tasks, ExecutionEngine(HASWELL))
        for name in executor_names():
            executor = get_executor(name)
            if not executor.supports("sorted_array"):
                continue
            got = executor.run(
                tasks, ExecutionEngine(HASWELL), group_size=group_size
            )
            assert got == expected, name

    @given(seed=st.integers(0, 2**16), group_size=st.integers(1, 12))
    @settings(max_examples=10, deadline=None)
    def test_csb_tree_equivalence(self, seed, group_size):
        keys = list(range(0, 4_000, 2))
        tree = CSBTree(AddressSpaceAllocator(), "t", keys, [k * 3 for k in keys])
        rng = np.random.RandomState(seed)
        probes = [int(rng.choice(keys)) for _ in range(30)]
        tasks = BulkLookup.csb_tree(tree, probes)
        expected = get_executor("sequential").run(tasks, ExecutionEngine(HASWELL))
        assert expected == [p * 3 for p in probes]
        for name in executor_names():
            executor = get_executor(name)
            if not executor.supports("csb_tree"):
                continue
            got = executor.run(
                tasks, ExecutionEngine(HASWELL), group_size=group_size
            )
            assert got == expected, name

    @given(seed=st.integers(0, 2**16), group_size=st.integers(1, 12))
    @settings(max_examples=10, deadline=None)
    def test_hash_probe_equivalence(self, seed, group_size):
        rng = np.random.RandomState(seed)
        keys = np.unique(rng.randint(0, 50_000, 2_000))
        table = ChainedHashTable(AddressSpaceAllocator(), "h", n_buckets=512)
        table.build(keys, keys * 7)
        probes = [int(v) for v in rng.randint(0, 60_000, 30)]
        tasks = BulkLookup.hash_probe(table, probes)
        expected = get_executor("sequential").run(tasks, ExecutionEngine(HASWELL))
        for name in executor_names():
            executor = get_executor(name)
            if not executor.supports("hash_probe"):
                continue
            got = executor.run(
                tasks, ExecutionEngine(HASWELL), group_size=group_size
            )
            assert got == expected, name


class TestBulkPipeline:
    def test_batched_results_match_unbatched(self):
        array = small_array()
        rng = np.random.RandomState(7)
        probes = [int(v) for v in rng.randint(0, array.size, 200)]
        tasks = BulkLookup.sorted_array(array, probes)
        direct = get_executor("CORO").run(
            tasks, ExecutionEngine(HASWELL), group_size=6
        )
        piped = BulkPipeline(get_executor("CORO"), batch_size=33).run(
            tasks, ExecutionEngine(HASWELL), group_size=6
        )
        assert piped == direct

    def test_nonpositive_batch_size_rejected(self):
        with pytest.raises(SchedulerError):
            BulkPipeline(get_executor("CORO"), batch_size=0)

    def test_pipeline_emits_one_span_per_batch(self):
        array = small_array()
        tasks = BulkLookup.sorted_array(array, range(10))
        recorder = SpanRecorder()
        BulkPipeline(get_executor("CORO"), batch_size=4).run(
            tasks, ExecutionEngine(HASWELL), group_size=4, recorder=recorder
        )
        spans = [s for s in recorder.spans if s.kind == "executor"]
        assert len(spans) == 3  # 4 + 4 + 2


class TestEmptyAndOversizedWorkloads:
    """Degenerate shapes the serving layer's coalescer can produce:
    empty batches and batches smaller than the group size."""

    def test_empty_task_list_returns_empty_for_every_executor(self):
        array = small_array()
        tasks = BulkLookup.sorted_array(array, [])
        for name in executor_names():
            engine = ExecutionEngine(HASWELL)
            assert get_executor(name).run(tasks, engine) == [], name

    def test_empty_pipeline_returns_empty_and_charges_nothing(self):
        tasks = BulkLookup.sorted_array(small_array(), [])
        engine = ExecutionEngine(HASWELL)
        result = BulkPipeline(get_executor("CORO"), batch_size=8).run(
            tasks, engine, group_size=6
        )
        assert result == []
        assert engine.clock == 0

    def test_group_size_beyond_task_count_is_not_padded(self):
        array = small_array()
        probes = [3, 1, 4]
        for name in ("GP", "AMAC", "CORO", "SPP"):
            result = get_executor(name).run(
                BulkLookup.sorted_array(array, probes),
                ExecutionEngine(HASWELL),
                group_size=64,
            )
            assert result == probes, name  # implicit array: value == index

    def test_pipeline_batch_beyond_task_count_is_one_batch(self):
        array = small_array()
        probes = [5, 2]
        recorder = SpanRecorder()
        result = BulkPipeline(get_executor("CORO"), batch_size=1000).run(
            BulkLookup.sorted_array(array, probes),
            ExecutionEngine(HASWELL),
            group_size=6,
            recorder=recorder,
        )
        assert result == probes
        spans = [s for s in recorder.spans if s.kind == "executor"]
        assert len(spans) == 1
        assert spans[0].attrs["n_inputs"] == 2


class TestSpanTagging:
    def test_executor_span_carries_name_and_workload(self):
        array = small_array()
        recorder = SpanRecorder()
        get_executor("GP").run(
            BulkLookup.sorted_array(array, range(20)),
            ExecutionEngine(HASWELL),
            group_size=5,
            recorder=recorder,
        )
        spans = [s for s in recorder.spans if s.kind == "executor"]
        assert len(spans) == 1
        assert spans[0].attrs == {
            "executor": "GP",
            "workload_kind": "sorted_array",
            "group_size": 5,
            "n_inputs": 20,
        }

    def test_untraced_run_charges_identical_cycles(self):
        array = small_array()
        tasks = BulkLookup.sorted_array(array, range(50))
        plain = ExecutionEngine(HASWELL)
        get_executor("CORO").run(tasks, plain, group_size=6)
        traced = ExecutionEngine(HASWELL)
        get_executor("CORO").run(
            tasks, traced, group_size=6, recorder=SpanRecorder()
        )
        assert plain.clock == traced.clock


class TestAblationKnobs:
    def test_off_registry_coro_executor_disables_recycling(self):
        array = small_array()
        tasks = BulkLookup.sorted_array(array, range(30))
        recycled = ExecutionEngine(HASWELL)
        CoroExecutor(recycle_frames=True).run(tasks, recycled, group_size=6)
        fresh = ExecutionEngine(HASWELL)
        CoroExecutor(recycle_frames=False).run(tasks, fresh, group_size=6)
        assert fresh.clock > recycled.clock  # allocations cost cycles


class TestAdaptivePolicy:
    """choose_policy with technique=None: Inequality-1-driven selection."""

    def test_small_table_stays_sequential(self):
        table = small_array(1 << 20)  # well inside the 25 MB LLC
        from repro.interleaving.policies import choose_policy

        policy = choose_policy(HASWELL, table, 10_000, technique=None)
        assert not policy.interleave
        assert policy.group_size == 1
        assert policy.executor_name == "sequential"
        assert "cache" in policy.reason

    def test_dram_resident_table_interleaves(self):
        table = small_array(256 << 20)  # 10x the LLC
        from repro.interleaving.policies import choose_policy

        policy = choose_policy(HASWELL, table, 10_000, technique=None)
        assert policy.interleave
        assert policy.group_size > 1
        assert policy.technique in ("GP", "AMAC", "CORO")
        assert policy.executor_name == policy.technique
        # The chosen pair must be runnable straight off the registry.
        executor = get_executor(policy.executor_name)
        assert executor.supports("sorted_array")

    def test_too_few_lookups_stay_sequential(self):
        table = small_array(256 << 20)
        from repro.interleaving.policies import choose_policy

        policy = choose_policy(HASWELL, table, 2, technique=None)
        assert not policy.interleave

    def test_forced_technique_respected(self):
        table = small_array(256 << 20)
        from repro.interleaving.policies import choose_policy

        policy = choose_policy(HASWELL, table, 10_000, technique="gp")
        assert policy.interleave and policy.technique == "GP"

    def test_candidate_restriction(self):
        from repro.interleaving.policies import choose_policy_for_bytes

        policy = choose_policy_for_bytes(
            HASWELL, 256 << 20, 10_000, technique=None, candidates=("coro",)
        )
        assert policy.technique == "CORO"


class TestNoDirectSchedulerImports:
    """Acceptance: no call site outside repro.interleaving imports the
    technique entry points directly — everything goes through the
    registry. ``repro/__init__.py`` re-exports them for API
    compatibility and is exempt."""

    FORBIDDEN = {"run_sequential", "run_interleaved"}

    def _is_forbidden(self, name: str) -> bool:
        return name in self.FORBIDDEN or name.endswith("_bulk")

    def test_src_imports_go_through_registry(self):
        offenders = []
        for module in sorted((ROOT / "src" / "repro").rglob("*.py")):
            relative = module.relative_to(ROOT / "src" / "repro")
            if relative.parts[0] == "interleaving" or str(relative) == "__init__.py":
                continue
            tree = ast.parse(module.read_text())
            for node in ast.walk(tree):
                if not isinstance(node, ast.ImportFrom):
                    continue
                if not (node.module or "").startswith("repro.interleaving"):
                    continue
                for alias in node.names:
                    if self._is_forbidden(alias.name):
                        offenders.append(f"{relative}: {alias.name}")
        assert not offenders, offenders
