"""Tests for coroutine handles and frame recycling."""

import pytest

from repro.config import HASWELL
from repro.errors import CoroutineStateError
from repro.interleaving.handle import CoroutineHandle, FramePool
from repro.sim import SUSPEND, Compute, ExecutionEngine


def make_engine():
    return ExecutionEngine(HASWELL)


def two_step_stream(result="done"):
    yield Compute(1, 1)
    yield SUSPEND
    yield Compute(1, 1)
    return result


class TestHandleLifecycle:
    def test_resume_until_done(self):
        engine = make_engine()
        handle = CoroutineHandle(engine, two_step_stream(), charge_allocation=False)
        assert not handle.is_done()
        handle.resume()  # runs to the suspension
        assert not handle.is_done()
        handle.resume()  # runs to completion
        assert handle.is_done()
        assert handle.get_result() == "done"

    def test_get_result_before_completion_raises(self):
        handle = CoroutineHandle(
            make_engine(), two_step_stream(), charge_allocation=False
        )
        with pytest.raises(CoroutineStateError):
            handle.get_result()

    def test_resume_after_completion_raises(self):
        handle = CoroutineHandle(
            make_engine(), two_step_stream(), charge_allocation=False
        )
        handle.run_to_completion()
        with pytest.raises(CoroutineStateError):
            handle.resume()

    def test_run_to_completion_returns_result(self):
        handle = CoroutineHandle(
            make_engine(), two_step_stream("x"), charge_allocation=False
        )
        assert handle.run_to_completion() == "x"

    def test_none_is_a_valid_result(self):
        def stream():
            yield Compute(1, 1)
            return None

        handle = CoroutineHandle(make_engine(), stream(), charge_allocation=False)
        handle.resume()
        assert handle.is_done()
        assert handle.get_result() is None


class TestAllocationCharging:
    COST = HASWELL.cost

    def test_allocation_charged_without_pool(self):
        engine = make_engine()
        CoroutineHandle(engine, two_step_stream())
        assert engine.clock == self.COST.frame_alloc_cycles

    def test_no_charge_when_disabled(self):
        engine = make_engine()
        CoroutineHandle(engine, two_step_stream(), charge_allocation=False)
        assert engine.clock == 0

    def test_pool_recycles_after_completion(self):
        engine = make_engine()
        pool = FramePool()
        first = CoroutineHandle(engine, two_step_stream(), frame_pool=pool)
        after_first_alloc = engine.clock
        assert after_first_alloc == self.COST.frame_alloc_cycles
        first.run_to_completion()
        assert pool.free_frames == 1
        clock = engine.clock
        CoroutineHandle(engine, two_step_stream(), frame_pool=pool)
        assert engine.clock == clock  # recycled: no allocation charge
        assert pool.recycles == 1

    def test_pool_counts_allocations(self):
        engine = make_engine()
        pool = FramePool()
        CoroutineHandle(engine, two_step_stream(), frame_pool=pool)
        CoroutineHandle(engine, two_step_stream(), frame_pool=pool)
        assert pool.allocations == 2
        assert pool.free_frames == 0
