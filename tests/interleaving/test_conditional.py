"""Tests for the conditional-suspension coroutine (Section 6 ablation)."""

import numpy as np

from repro.config import HASWELL
from repro.indexes.binary_search import (
    binary_search_coro,
    binary_search_coro_conditional,
    reference_search,
)
from repro.indexes.sorted_array import SortedIntArray, int_array_of_bytes
from repro.interleaving import run_interleaved
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem


def make_table(values):
    return SortedIntArray.from_values(AddressSpaceAllocator(), "t", values)


class TestConditionalCoroutine:
    def test_results_match_unconditional(self):
        values = sorted(set(np.random.RandomState(0).randint(0, 5000, 400)))
        table = make_table(values)
        probes = [int(p) for p in np.random.RandomState(1).randint(-5, 5005, 80)]
        expected = [reference_search(values, p) for p in probes]
        got = run_interleaved(
            ExecutionEngine(HASWELL),
            lambda v, il: binary_search_coro_conditional(table, v, il),
            probes,
            6,
        )
        assert got == expected

    def test_skips_suspensions_for_cached_lines(self):
        """When the whole array is L1-resident, no suspension is taken,
        so no coroutine switch cost is charged beyond the first resume."""
        table = make_table(list(range(256)))  # 1 KB: a few lines
        probes = [10, 20, 30, 40]

        def run(factory):
            memory = MemorySystem(HASWELL)
            lines = range(
                table.region.base // 64, (table.region.base + table.nbytes) // 64 + 1
            )
            for line in lines:
                memory.l1.install(line)
                memory.l2.install(line)
                memory.l3.install(line)
            engine = ExecutionEngine(HASWELL, memory)
            engine.memory.translate(table.region.base, 0)
            run_interleaved(engine, factory, probes, 4)
            return engine.clock

        plain = run(lambda v, il: binary_search_coro(table, v, il))
        conditional = run(
            lambda v, il: binary_search_coro_conditional(table, v, il)
        )
        assert conditional < plain

    def test_still_suspends_on_misses(self):
        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "big", 64 << 20)
        probes = np.random.RandomState(0).randint(0, table.size, 60).tolist()
        engine = ExecutionEngine(HASWELL)
        results = run_interleaved(
            engine,
            lambda v, il: binary_search_coro_conditional(table, v, il),
            probes,
            6,
        )
        assert results == probes
        # Deep probes miss -> fills were started and interleaved over.
        assert engine.memory.stats.prefetches > 0
        assert engine.memory.stats.loads_by_level["DRAM"] < len(probes)
