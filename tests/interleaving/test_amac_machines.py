"""Tests for the extra AMAC state machines (hash probe, tree lookup)
and the hash build-phase stream with Store events."""

import numpy as np
import pytest

from repro.config import HASWELL
from repro.indexes.base import INVALID_CODE
from repro.indexes.csb_tree import CSBTree, csb_lookup_stream
from repro.indexes.csb_tree_synthetic import ImplicitCSBTree
from repro.indexes.hash_table import (
    ChainedHashTable,
    hash_insert_stream,
    hash_probe_stream,
)
from repro.interleaving import run_interleaved, run_sequential
from repro.interleaving.amac import (
    amac_csb_lookup_bulk,
    amac_hash_probe_bulk,
)
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_engine():
    return ExecutionEngine(HASWELL)


class TestAmacHashProbe:
    def test_matches_oracle(self):
        table = ChainedHashTable(AddressSpaceAllocator(), "ht", 128)
        table.build(range(0, 2000, 3), range(667))
        probes = list(range(-1, 2005, 17))
        expected = [table.lookup(p) for p in probes]
        assert amac_hash_probe_bulk(make_engine(), table, probes, 8) == expected

    def test_long_chains(self):
        table = ChainedHashTable(AddressSpaceAllocator(), "ht", 1)
        table.build(range(30), range(30))
        probes = [0, 29, 15, 99]
        expected = [table.lookup(p) for p in probes]
        assert amac_hash_probe_bulk(make_engine(), table, probes, 3) == expected

    def test_agrees_with_coroutine_probe(self):
        table = ChainedHashTable(AddressSpaceAllocator(), "ht", 64)
        table.build(range(0, 500, 2), range(250))
        probes = list(range(0, 510, 7))
        coro = run_interleaved(
            make_engine(),
            lambda k, il: hash_probe_stream(table, k, il),
            probes,
            6,
        )
        amac = amac_hash_probe_bulk(make_engine(), table, probes, 6)
        assert coro == amac


class TestAmacCsbLookup:
    def test_materialized_tree(self):
        keys = list(range(0, 5000, 3))
        tree = CSBTree(AddressSpaceAllocator(), "t", keys, node_size=128)
        probes = list(range(-2, 5005, 41))
        expected = [tree.search(p) for p in probes]
        assert amac_csb_lookup_bulk(make_engine(), tree, probes, 6) == expected

    def test_implicit_tree(self):
        tree = ImplicitCSBTree(AddressSpaceAllocator(), "it", 20_000, node_size=128)
        probes = [-1, 0, 100, 19_999, 20_000, 7_777]
        expected = [tree.search(p) for p in probes]
        assert amac_csb_lookup_bulk(make_engine(), tree, probes, 4) == expected

    def test_agrees_with_coroutine_traversal(self):
        tree = ImplicitCSBTree(AddressSpaceAllocator(), "it", 30_000, node_size=128)
        probes = np.random.RandomState(0).randint(-10, 30_010, 120).tolist()
        coro = run_interleaved(
            make_engine(),
            lambda v, il: csb_lookup_stream(tree, v, il),
            probes,
            6,
        )
        amac = amac_csb_lookup_bulk(make_engine(), tree, probes, 6)
        assert coro == amac


class TestHashBuildStream:
    def test_sequential_build_matches_structural(self):
        alloc = AddressSpaceAllocator()
        simulated = ChainedHashTable(alloc, "sim", 64)
        engine = make_engine()
        run_sequential(
            engine,
            lambda kv, il: hash_insert_stream(simulated, kv[0], kv[1], il),
            [(k, k * 2) for k in range(100)],
        )
        structural = ChainedHashTable(AddressSpaceAllocator(), "ref", 64)
        structural.build(range(100), [k * 2 for k in range(100)])
        for key in range(100):
            assert simulated.lookup(key) == structural.lookup(key)
        assert engine.clock > 0
        assert engine.memory.stats.loads > 0

    def test_interleaved_build_produces_valid_table(self):
        """Interleaving may reorder chain prepends between concurrent
        inserts; the table stays correct (every key findable)."""
        alloc = AddressSpaceAllocator()
        table = ChainedHashTable(alloc, "sim", 32)
        keys = list(range(200))
        run_interleaved(
            make_engine(),
            lambda kv, il: hash_insert_stream(table, kv[0], kv[1], il),
            [(k, k + 7) for k in keys],
            8,
        )
        assert table.n_entries == 200
        for key in keys:
            assert table.lookup(key) == key + 7

    def test_build_interleaving_reduces_cycles_on_big_directory(self):
        from repro.sim.memory import MemorySystem

        def build(interleave):
            alloc = AddressSpaceAllocator()
            table = ChainedHashTable(alloc, "sim", 4_000_000)
            rng = np.random.RandomState(0)
            keys = [int(k) for k in rng.randint(0, 10**9, 600)]
            engine = ExecutionEngine(HASWELL, MemorySystem(HASWELL))
            pairs = [(k, k) for k in keys]
            if interleave:
                run_interleaved(
                    engine,
                    lambda kv, il: hash_insert_stream(table, kv[0], kv[1], il),
                    pairs,
                    8,
                )
            else:
                run_sequential(
                    engine,
                    lambda kv, il: hash_insert_stream(table, kv[0], kv[1], il),
                    pairs,
                )
            return engine.clock

        assert build(True) < 0.7 * build(False)


class TestStoreEvent:
    def test_store_fetches_missing_line(self):
        from repro.sim.events import Store

        engine = make_engine()

        def stream():
            yield Store(1 << 22, 8)
            return None

        engine.run(stream())
        # RFO fetched the line (not recorded as a demand load).
        assert engine.memory.stats.loads == 0
        assert engine.memory.l1.contains((1 << 22) // 64) or engine.memory.lfbs.find(
            (1 << 22) // 64
        )

    def test_store_stall_less_than_load_stall(self):
        from repro.sim.events import Load, Store

        def run(event):
            engine = make_engine()
            engine.memory.translate(1 << 22, 0)

            def stream():
                yield event
                return None

            engine.run(stream())
            return engine.tmam.memory_stall_cycles

        store_stall = run(Store(1 << 22, 8))
        load_stall = run(Load(1 << 22, 8))
        assert store_stall < load_stall
