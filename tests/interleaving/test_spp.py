"""Tests for the SPP extension (the variant the paper's footnote 2 skips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import SchedulerError
from repro.indexes.binary_search import reference_search
from repro.indexes.sorted_array import SortedIntArray
from repro.interleaving import gp_binary_search_bulk, spp_binary_search_bulk
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_table(values):
    return SortedIntArray.from_values(AddressSpaceAllocator(), "t", values)


def make_engine():
    return ExecutionEngine(HASWELL)


class TestSpp:
    def test_matches_reference(self):
        values = sorted(set(np.random.RandomState(5).randint(0, 9999, 600)))
        table = make_table(values)
        probes = [int(p) for p in np.random.RandomState(6).randint(-5, 10_005, 90)]
        expected = [reference_search(values, p) for p in probes]
        assert spp_binary_search_bulk(make_engine(), table, probes, 8) == expected

    def test_results_in_input_order(self):
        table = make_table(list(range(1000)))
        probes = list(range(0, 1000, 13))
        assert spp_binary_search_bulk(make_engine(), table, probes, 6) == probes

    def test_depth_of_one(self):
        table = make_table(list(range(64)))
        assert spp_binary_search_bulk(make_engine(), table, [5, 6], 1) == [5, 6]

    def test_depth_larger_than_inputs(self):
        table = make_table(list(range(64)))
        assert spp_binary_search_bulk(make_engine(), table, [5], 100) == [5]

    def test_empty_inputs(self):
        table = make_table([1, 2])
        assert spp_binary_search_bulk(make_engine(), table, [], 4) == []

    def test_invalid_depth(self):
        table = make_table([1])
        with pytest.raises(SchedulerError):
            spp_binary_search_bulk(make_engine(), table, [1], 0)

    def test_single_element_table(self):
        table = make_table([42])
        assert spp_binary_search_bulk(make_engine(), table, [42, 0, 99], 4) == [
            0,
            0,
            0,
        ]

    def test_pipeline_issues_one_prefetch_per_iteration(self):
        table = make_table(list(range(1 << 10)))  # 10 iterations
        engine = make_engine()
        spp_binary_search_bulk(engine, table, list(range(7)), 4)
        assert engine.memory.stats.prefetches == 7 * 10

    @given(
        values=st.sets(st.integers(0, 20_000), min_size=2, max_size=300),
        depth=st.integers(1, 14),
    )
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_gp(self, values, depth):
        values = sorted(values)
        table = make_table(values)
        probes = values[::4] + [min(values) - 1, max(values) + 1]
        assert spp_binary_search_bulk(
            make_engine(), table, probes, depth
        ) == gp_binary_search_bulk(make_engine(), table, probes, depth)
