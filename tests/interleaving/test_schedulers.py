"""Tests for the sequential and interleaved schedulers (Listing 7)."""

import pytest

from repro.config import HASWELL
from repro.errors import SchedulerError, SimulationError
from repro.indexes.binary_search import binary_search_coro, reference_search
from repro.indexes.sorted_array import SortedIntArray
from repro.interleaving import FramePool, run_interleaved, run_sequential
from repro.sim import SUSPEND, Compute, ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_engine():
    return ExecutionEngine(HASWELL)


def tagged_stream(value, interleave, suspensions=3):
    def stream():
        for _ in range(suspensions if interleave else 0):
            yield Compute(1, 1)
            yield SUSPEND
        yield Compute(1, 1)
        return value * 10

    return stream()


class TestRunSequential:
    def test_results_in_input_order(self):
        results = run_sequential(make_engine(), tagged_stream, [3, 1, 2])
        assert results == [30, 10, 20]

    def test_empty_inputs(self):
        assert run_sequential(make_engine(), tagged_stream, []) == []

    def test_sequential_never_charges_switch_or_alloc(self):
        engine = make_engine()
        run_sequential(engine, tagged_stream, [1, 2])
        # Only the two Compute(1, 1) events are charged.
        assert engine.clock == 2

    def test_suspending_stream_still_completes_sequentially(self):
        # A factory that ignores the interleave flag and suspends anyway is
        # tolerated: the handle resumes it until completion.
        engine = make_engine()
        results = run_sequential(engine, lambda v, il: tagged_stream(v, True), [1])
        assert results == [10]

    def test_raw_engine_rejects_stray_suspend(self):
        engine = make_engine()
        with pytest.raises(SimulationError):
            engine.run(tagged_stream(1, True))


class TestRunInterleaved:
    def test_results_in_input_order(self):
        results = run_interleaved(make_engine(), tagged_stream, [5, 4, 3, 2, 1], 2)
        assert results == [50, 40, 30, 20, 10]

    def test_group_larger_than_inputs(self):
        assert run_interleaved(make_engine(), tagged_stream, [1, 2], 100) == [10, 20]

    def test_group_of_one(self):
        assert run_interleaved(make_engine(), tagged_stream, [1, 2, 3], 1) == [
            10,
            20,
            30,
        ]

    def test_empty_inputs(self):
        assert run_interleaved(make_engine(), tagged_stream, [], 4) == []

    def test_invalid_group_size(self):
        with pytest.raises(SchedulerError):
            run_interleaved(make_engine(), tagged_stream, [1], 0)

    def test_switch_cost_charged_per_resume(self):
        engine = make_engine()
        run_interleaved(engine, tagged_stream, [1], 1)
        switch_cycles = HASWELL.cost.coro_switch[0]
        # 4 resumes (3 suspensions + final), plus one frame allocation,
        # plus 4 Compute(1, 1).
        expected = 4 * switch_cycles + HASWELL.cost.frame_alloc_cycles + 4
        assert engine.clock == expected

    def test_frame_recycling_limits_allocations(self):
        engine = make_engine()
        pool = FramePool()
        run_interleaved(engine, tagged_stream, list(range(20)), 4, frame_pool=pool)
        assert pool.allocations == 4  # one per slot, then recycled
        assert pool.recycles == 16

    def test_recycling_disabled_allocates_per_lookup(self):
        engine = make_engine()
        baseline = make_engine()
        run_interleaved(baseline, tagged_stream, list(range(20)), 4)
        run_interleaved(engine, tagged_stream, list(range(20)), 4, recycle_frames=False)
        extra_allocs = 16 * HASWELL.cost.frame_alloc_cycles
        assert engine.clock == baseline.clock + extra_allocs


class TestPolicyPurity:
    """Interleaving must never change results (paper Section 4)."""

    def test_binary_search_results_independent_of_group(self):
        values = sorted(set(range(0, 2000, 7)))
        table = SortedIntArray.from_values(AddressSpaceAllocator(), "t", values)
        probes = list(range(-3, 2003, 23))
        expected = [reference_search(values, p) for p in probes]
        for group in (1, 3, 6, 10, 17, 64):
            got = run_interleaved(
                make_engine(),
                lambda v, il: binary_search_coro(table, v, il),
                probes,
                group,
            )
            assert got == expected, f"group={group}"

    def test_interleaved_g1_slower_than_sequential(self):
        """At group size 1 the switch overhead buys nothing (Section 5.4.5)."""
        values = list(range(4096))
        table = SortedIntArray.from_values(AddressSpaceAllocator(), "t", values)
        probes = list(range(0, 4096, 64))
        seq_engine = make_engine()
        run_sequential(
            seq_engine, lambda v, il: binary_search_coro(table, v, il), probes
        )
        inter_engine = make_engine()
        run_interleaved(
            inter_engine, lambda v, il: binary_search_coro(table, v, il), probes, 1
        )
        assert inter_engine.clock > seq_engine.clock
