"""Golden equivalence for the trace-compiled executor twins.

The compiled engine path (:mod:`repro.interleaving.compiled`) replays a
staged schedule instead of driving Python generators, and its whole
correctness contract is *bit identity*: at the pinned 16 MB golden
points every compiled twin must reproduce its generator twin's cycle
count, search results, and metrics tree exactly — same numbers as
``tests/analysis/test_golden_numbers.py``, reached without a single
generator resume. If a change legitimately alters the cost model,
recapture the golden numbers in the same commit and say why.

The second half pins the *fallback* contract: workload shapes the
stager cannot flatten (CSB+-tree descents, skip-list streams) and
tracer-enabled engines must take the generator path with the reason
counted, and the counters must surface as ``compiled_fallbacks``
through a :class:`~repro.obs.metrics.MetricsRegistry` source.
"""

import pytest

from repro.analysis.experiments import measure_binary_search
from repro.config import HASWELL
from repro.indexes.csb_tree import CSBTree
from repro.indexes.skip_list import SkipList, skip_lookup_stream
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving import (
    COMPILED_TWINS,
    BulkLookup,
    compiled_metrics_source,
    compiled_stats,
    get_executor,
    register_compiled_metrics,
    reset_compiled_stats,
    resolve_executor,
    use_engine,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NullRecorder, SpanRecorder
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator

#: The pinned golden numbers (identical to test_golden_numbers.py) for
#: every technique that has a compiled twin. ``std`` stays generator-only.
GOLDEN_CYCLES_PER_SEARCH = {
    "Baseline": 978.515625,
    "GP": 767.609375,
    "AMAC": 1236.5625,
    "CORO": 1214.71875,
}

SIZE_BYTES = 16 << 20
N_LOOKUPS = 64


def small_array(nbytes=1 << 20):
    return int_array_of_bytes(AddressSpaceAllocator(), "arr", nbytes)


class TestCompiledGoldenNumbers:
    """Compiled replay reproduces the pinned harness numbers exactly."""

    @pytest.mark.parametrize("technique", sorted(GOLDEN_CYCLES_PER_SEARCH))
    def test_compiled_cycles_per_search_bit_identical(self, technique):
        reset_compiled_stats()
        point = measure_binary_search(
            SIZE_BYTES, technique, n_lookups=N_LOOKUPS, engine="compiled"
        )
        assert point.cycles_per_search == GOLDEN_CYCLES_PER_SEARCH[technique]
        stats = compiled_stats()
        assert stats["fallbacks"] == 0, stats["fallbacks_by_reason"]
        assert stats["replays"] >= 1  # the number came from staged replay


class TestCompiledTwinEquivalence:
    """Twin-vs-generator runs agree on results, clock, and metrics."""

    @pytest.mark.parametrize(
        "generator_name", sorted(set(COMPILED_TWINS) - {"interleaved"})
    )
    def test_results_clock_and_metrics_identical(self, generator_name):
        array = small_array()
        probes = [int(array.size * i // 37) * 7 + 3 for i in range(40)]
        tasks = BulkLookup.sorted_array(array, probes)
        generator = get_executor(generator_name)
        with use_engine("compiled"):
            compiled = resolve_executor(generator_name)
        assert compiled.name != generator.name

        gen_engine = ExecutionEngine(HASWELL)
        expected = generator.run(tasks, gen_engine, group_size=4)
        reset_compiled_stats()
        compiled_engine = ExecutionEngine(HASWELL)
        # A (disabled) null recorder must not trip the tracer fallback.
        got = compiled.run(
            tasks, compiled_engine, group_size=4, recorder=NullRecorder()
        )
        assert compiled_stats()["fallbacks"] == 0
        assert got == expected
        assert compiled_engine.clock == gen_engine.clock
        assert compiled_engine.metrics.snapshot() == gen_engine.metrics.snapshot()

    def test_alias_resolves_to_same_twin(self):
        with use_engine("compiled"):
            assert resolve_executor("interleaved") is resolve_executor("CORO")


class TestCompiledFallbacks:
    """Non-compilable shapes take the generator path, counted."""

    def _csb_tasks(self):
        keys = list(range(0, 2_000, 2))
        tree = CSBTree(AddressSpaceAllocator(), "t", keys, [k * 3 for k in keys])
        return BulkLookup.csb_tree(tree, [0, 6, 40, 1998, 777])

    def test_csb_tree_falls_back_to_generator_path(self):
        tasks = self._csb_tasks()
        expected = get_executor("CORO").run(
            tasks, ExecutionEngine(HASWELL), group_size=4
        )
        reset_compiled_stats()
        with use_engine("compiled"):
            got = resolve_executor("CORO").run(
                tasks, ExecutionEngine(HASWELL), group_size=4
            )
        assert got == expected
        stats = compiled_stats()
        assert stats["replays"] == 0
        assert stats["fallbacks_by_reason"] == {"workload_kind": 1}
        assert stats["fallbacks_by_executor"] == {"CORO-compiled": 1}

    def test_skip_list_stream_falls_back_to_generator_path(self):
        skiplist = SkipList(AddressSpaceAllocator(), "s")
        skiplist.build(range(0, 500, 5), range(0, 1_000, 10))
        factory = lambda key, il: skip_lookup_stream(skiplist, key, il)
        tasks = BulkLookup.stream(factory, [0, 35, 120, 495, 7])
        expected = get_executor("CORO").run(
            tasks, ExecutionEngine(HASWELL), group_size=3
        )
        reset_compiled_stats()
        with use_engine("compiled"):
            got = resolve_executor("CORO").run(
                tasks, ExecutionEngine(HASWELL), group_size=3
            )
        assert got == expected
        assert compiled_stats()["fallbacks_by_reason"] == {"workload_kind": 1}

    def test_tracer_enabled_engine_falls_back(self):
        array = small_array()
        tasks = BulkLookup.sorted_array(array, [3, 99, 4_000])
        reset_compiled_stats()
        engine = ExecutionEngine(HASWELL)
        with use_engine("compiled"):
            resolve_executor("CORO").run(
                tasks, engine, group_size=3, recorder=SpanRecorder()
            )
        assert compiled_stats()["fallbacks_by_reason"] == {"tracer": 1}

    def test_fallback_counter_exported_through_metrics_registry(self):
        reset_compiled_stats()
        with use_engine("compiled"):
            resolve_executor("CORO").run(
                self._csb_tasks(), ExecutionEngine(HASWELL), group_size=4
            )
        source = compiled_metrics_source()
        assert source["compiled_fallbacks"] == 1
        assert "fallbacks" not in source  # renamed for the metrics tree
        registry = MetricsRegistry()
        register_compiled_metrics(registry)
        mounted = registry.snapshot()["interleaving"]["compiled"]
        assert mounted["compiled_fallbacks"] == 1
        assert mounted["fallbacks_by_reason"] == {"workload_kind": 1}
