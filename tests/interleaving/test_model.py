"""Tests for the interleaving model (Inequality 1) and policies."""

import pytest

from repro.config import HASWELL
from repro.errors import ConfigurationError
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving.model import (
    InterleavingParams,
    estimate_group_size,
    optimal_group_size,
    params_from_profiles,
    residual_stall,
)
from repro.interleaving.policies import choose_policy, default_group_size
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.tmam import TmamStats


class TestInequalityOne:
    def test_paper_calibration_gp(self):
        """With the paper's parameters, GP needs ~12 streams (Section 5.4.5)."""
        params = InterleavingParams(t_compute=11, t_stall=170, t_switch=5)
        assert optimal_group_size(params) in (11, 12, 13)

    def test_paper_calibration_coro(self):
        """AMAC/CORO estimates land at ~6 (Section 5.4.5)."""
        params = InterleavingParams(t_compute=11, t_stall=170, t_switch=22)
        assert optimal_group_size(params) in (6, 7)

    def test_no_stall_means_group_of_one(self):
        params = InterleavingParams(t_compute=10, t_stall=0, t_switch=5)
        assert optimal_group_size(params) == 1

    def test_switch_larger_than_stall(self):
        params = InterleavingParams(t_compute=10, t_stall=5, t_switch=20)
        assert params.t_target == 0
        assert optimal_group_size(params) == 1

    def test_zero_denominator(self):
        params = InterleavingParams(t_compute=0, t_stall=100, t_switch=0)
        assert optimal_group_size(params) == 1

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            InterleavingParams(-1, 0, 0)


class TestResidualStall:
    def test_vanishes_at_optimal_group(self):
        params = InterleavingParams(t_compute=11, t_stall=170, t_switch=22)
        optimal = optimal_group_size(params)
        assert residual_stall(params, optimal) == 0
        assert residual_stall(params, optimal - 2) > 0

    def test_monotone_decreasing(self):
        params = InterleavingParams(t_compute=10, t_stall=170, t_switch=20)
        stalls = [residual_stall(params, g) for g in range(1, 10)]
        assert stalls == sorted(stalls, reverse=True)

    def test_invalid_group(self):
        params = InterleavingParams(10, 100, 10)
        with pytest.raises(ConfigurationError):
            residual_stall(params, 0)


class TestParamExtraction:
    def make_profile(self, cycles, stall_cycles, instructions=100):
        stats = TmamStats()
        stats.charge_compute(cycles - stall_cycles, instructions)
        stats.charge_memory_stall(stall_cycles)
        return stats

    def test_extraction_matches_construction(self):
        # 10 switch points: 10 compute + 170 stall each for Baseline;
        # the technique at G=1 adds 20 busy cycles per switch point.
        baseline = self.make_profile(1800, 1700)
        technique = self.make_profile(2000, 1700)
        params = params_from_profiles(baseline, technique, 10)
        assert params.t_stall == pytest.approx(170)
        assert params.t_compute == pytest.approx(10)
        assert params.t_switch == pytest.approx(20)

    def test_estimate_capped_by_lfbs(self):
        baseline = self.make_profile(1800, 1700)
        technique = self.make_profile(1850, 1700)  # tiny switch cost
        uncapped = estimate_group_size(baseline, technique, 10)
        capped = estimate_group_size(baseline, technique, 10, max_outstanding=10)
        assert uncapped > 10
        assert capped == 10

    def test_zero_switch_points_rejected(self):
        profile = self.make_profile(100, 50)
        with pytest.raises(ConfigurationError):
            params_from_profiles(profile, profile, 0)


class TestPolicies:
    def test_small_table_stays_sequential(self):
        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "small", 1 << 20)
        policy = choose_policy(HASWELL, table, 10_000)
        assert not policy.interleave
        assert "fits" in policy.reason

    def test_large_table_interleaves(self):
        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "large", 256 << 20)
        policy = choose_policy(HASWELL, table, 10_000)
        assert policy.interleave
        assert policy.group_size >= 2
        assert policy.group_size <= HASWELL.n_line_fill_buffers

    def test_too_few_lookups_stay_sequential(self):
        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "large2", 256 << 20)
        policy = choose_policy(HASWELL, table, 1)
        assert not policy.interleave

    def test_default_group_sizes_match_paper(self):
        assert default_group_size(HASWELL, "gp") == 10  # LFB-capped (12 -> 10)
        assert default_group_size(HASWELL, "coro") in (5, 6, 7)
        assert default_group_size(HASWELL, "amac") in (5, 6, 7)

    def test_unknown_technique(self):
        with pytest.raises(ValueError):
            default_group_size(HASWELL, "spp")

    def test_describe_mentions_mode(self):
        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "t", 1 << 20)
        assert "sequential" in choose_policy(HASWELL, table, 5).describe()
