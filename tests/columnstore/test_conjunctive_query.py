"""Tests for conjunctive (multi-column) IN-predicate queries."""

import numpy as np
import pytest

from repro.columnstore import ColumnTable
from repro.config import HASWELL
from repro.errors import ColumnStoreError
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_table(n_rows=800, seed=0, merged=True):
    rng = np.random.RandomState(seed)
    zips = rng.randint(0, 60, n_rows)
    qtys = rng.randint(0, 20, n_rows)
    table = ColumnTable(AddressSpaceAllocator(), "sales", ["zip", "qty"])
    table.insert_rows(
        [{"zip": int(z), "qty": int(q)} for z, q in zip(zips, qtys)]
    )
    if merged:
        table.merge()
    return table, zips, qtys


class TestConjunctiveQuery:
    def test_matches_brute_force(self):
        table, zips, qtys = make_table()
        zip_list = [1, 5, 9, 13]
        qty_list = [2, 3]
        results = table.query_in_conjunctive(
            ExecutionEngine(HASWELL),
            {"zip": zip_list, "qty": qty_list},
            strategy="interleaved",
        )
        expected = np.flatnonzero(
            np.isin(zips, zip_list) & np.isin(qtys, qty_list)
        )
        assert np.array_equal(np.sort(results["main"]), expected)

    def test_single_column_degenerates_to_query_in(self):
        table, zips, _ = make_table()
        zip_list = [3, 7]
        conjunctive = table.query_in_conjunctive(
            ExecutionEngine(HASWELL), {"zip": zip_list}
        )
        plain = table.query_in(ExecutionEngine(HASWELL), "zip", zip_list)
        assert np.array_equal(
            np.sort(conjunctive["main"]), np.sort(plain["main"].rows)
        )

    def test_spans_delta(self):
        table, zips, qtys = make_table(merged=True)
        table.insert_rows([{"zip": 99, "qty": 99}, {"zip": 99, "qty": 1}])
        results = table.query_in_conjunctive(
            ExecutionEngine(HASWELL), {"zip": [99], "qty": [99]}
        )
        assert results["delta"].size == 1

    def test_empty_intersection(self):
        table, _, _ = make_table()
        results = table.query_in_conjunctive(
            ExecutionEngine(HASWELL), {"zip": [1000], "qty": [2000]}
        )
        assert results["main"].size == 0

    def test_strategy_invariance(self):
        table, zips, qtys = make_table(seed=4)
        predicates = {"zip": [2, 4, 6], "qty": [1, 5, 9]}
        outcomes = [
            np.sort(
                table.query_in_conjunctive(
                    ExecutionEngine(HASWELL), predicates, strategy=s
                )["main"]
            ).tolist()
            for s in ("sequential", "interleaved", "gp", "amac")
        ]
        assert all(o == outcomes[0] for o in outcomes)

    def test_no_columns_rejected(self):
        table, _, _ = make_table()
        with pytest.raises(ColumnStoreError):
            table.query_in_conjunctive(ExecutionEngine(HASWELL), {})

    def test_unknown_column_rejected(self):
        table, _, _ = make_table()
        with pytest.raises(ColumnStoreError):
            table.query_in_conjunctive(ExecutionEngine(HASWELL), {"nope": [1]})
