"""Tests for string-valued Main dictionaries."""

import pytest

from repro.columnstore import MainDictionary
from repro.config import HASWELL
from repro.errors import ColumnStoreError
from repro.indexes.base import INVALID_CODE
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.strings import index_to_key


class TestStringMainDictionary:
    def test_codes_follow_byte_order(self):
        md = MainDictionary.from_string_values(
            AddressSpaceAllocator(), "s", [b"pear", b"apple", b"fig"]
        )
        assert md.extract(0).rstrip(b"\x00") == b"apple"
        assert md.locate(b"pear") == 2

    def test_duplicates_collapse(self):
        md = MainDictionary.from_string_values(
            AddressSpaceAllocator(), "s", [b"a", b"a", b"b"]
        )
        assert md.n_values == 2

    def test_absent_value(self):
        md = MainDictionary.from_string_values(
            AddressSpaceAllocator(), "s", [b"a", b"c"]
        )
        assert md.locate(b"b") == INVALID_CODE

    def test_too_long_value_rejected(self):
        with pytest.raises(ColumnStoreError):
            MainDictionary.from_string_values(
                AddressSpaceAllocator(), "s", [b"x" * 17]
            )

    def test_empty_rejected(self):
        with pytest.raises(ColumnStoreError):
            MainDictionary.from_string_values(AddressSpaceAllocator(), "s", [])

    def test_locate_stream_matches_python(self):
        values = [index_to_key(i) for i in range(0, 3000, 7)]
        md = MainDictionary.from_string_values(AddressSpaceAllocator(), "s", values)
        engine = ExecutionEngine(HASWELL)
        for probe in values[::31] + [index_to_key(1)]:
            # Pad the probe to the stored element width for comparison.
            padded = probe.ljust(16, b"\x00")
            assert engine.run(md.locate_stream(padded)) == md.locate(padded)

    def test_implicit_string_dictionary(self):
        md = MainDictionary.implicit_string(AddressSpaceAllocator(), "s", 1 << 20)
        assert md.n_values == (1 << 20) // 16
        assert md.extract(5) == index_to_key(5)
        assert md.locate(index_to_key(100)) == 100
        # String comparisons carry the surcharge.
        assert md.array.compare_extra[0] > 0

    def test_interleaved_string_locate(self):
        md = MainDictionary.implicit_string(AddressSpaceAllocator(), "s", 1 << 20)
        probes = [index_to_key(i * 97 % md.n_values) for i in range(60)]
        factory = lambda v, il: md.locate_stream(v, il)
        seq = run_sequential(ExecutionEngine(HASWELL), factory, probes)
        inter = run_interleaved(ExecutionEngine(HASWELL), factory, probes, 6)
        assert seq == inter
        assert all(code != INVALID_CODE for code in seq)
