"""Tests for interleavable bulk extract (decode-side lookups)."""

import numpy as np

from repro.columnstore import DeltaDictionary, MainDictionary
from repro.config import HASWELL
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem


class TestBulkExtract:
    def test_main_interleaved_extract_matches_sequential(self):
        md = MainDictionary.implicit(AddressSpaceAllocator(), "m", 1 << 20)
        codes = np.random.RandomState(0).randint(0, md.n_values, 200).tolist()
        factory = lambda code, il: md.extract_stream(code, il)
        seq = run_sequential(ExecutionEngine(HASWELL), factory, codes)
        inter = run_interleaved(ExecutionEngine(HASWELL), factory, codes, 8)
        assert seq == inter == codes  # implicit dictionary: value == code

    def test_delta_interleaved_extract(self):
        dd = DeltaDictionary.implicit(AddressSpaceAllocator(), "d", 1 << 16)
        codes = list(range(0, dd.n_values, 97))
        factory = lambda code, il: dd.extract_stream(code, il)
        seq = run_sequential(ExecutionEngine(HASWELL), factory, codes)
        inter = run_interleaved(ExecutionEngine(HASWELL), factory, codes, 6)
        assert seq == inter
        assert all(dd.locate(v) == c for c, v in zip(codes, seq))

    def test_interleaving_hides_extract_misses(self):
        """Scattered decodes over a big dictionary behave like any other
        pointer-chasing workload: interleaving hides the misses."""
        md = MainDictionary.implicit(AddressSpaceAllocator(), "m", 256 << 20)
        rng = np.random.RandomState(1)
        codes = rng.randint(0, md.n_values, 400).tolist()
        warm = rng.randint(0, md.n_values, 400).tolist()
        factory = lambda code, il: md.extract_stream(code, il)

        def measure(runner):
            memory = MemorySystem(HASWELL)
            runner(ExecutionEngine(HASWELL, memory), warm)
            engine = ExecutionEngine(HASWELL, memory)
            runner(engine, codes)
            return engine.clock

        seq_cycles = measure(lambda e, cs: run_sequential(e, factory, cs))
        inter_cycles = measure(lambda e, cs: run_interleaved(e, factory, cs, 8))
        assert inter_cycles < 0.7 * seq_cycles
