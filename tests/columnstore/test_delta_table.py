"""Tests for the Delta store, merge, and the table abstraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import ColumnTable, DeltaStore, merge_delta_into_main
from repro.config import HASWELL
from repro.errors import ColumnStoreError
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


class TestDeltaStore:
    def test_append_assigns_insertion_codes(self):
        delta = DeltaStore(AddressSpaceAllocator(), "d")
        assert delta.append(50) == 0
        assert delta.append(10) == 1
        assert delta.append(50) == 0  # existing value reuses its code
        assert delta.n_rows == 3
        assert delta.n_values == 2

    def test_row_values(self):
        delta = DeltaStore(AddressSpaceAllocator(), "d")
        delta.append_many([7, 8, 7])
        assert [delta.row_value(r) for r in range(3)] == [7, 8, 7]

    def test_as_column_roundtrip(self):
        delta = DeltaStore(AddressSpaceAllocator(), "d")
        values = [9, 2, 9, 5, 2, 11]
        delta.append_many(values)
        column = delta.as_column()
        assert [column.decode_row(r) for r in range(len(values))] == values

    def test_empty_as_column_rejected(self):
        delta = DeltaStore(AddressSpaceAllocator(), "d")
        with pytest.raises(ColumnStoreError):
            delta.as_column()

    def test_clear(self):
        delta = DeltaStore(AddressSpaceAllocator(), "d")
        delta.append(1)
        delta.clear()
        assert delta.n_rows == 0 and delta.n_values == 0


class TestMerge:
    def test_merge_into_empty_main(self):
        alloc = AddressSpaceAllocator()
        delta = DeltaStore(alloc, "d")
        delta.append_many([5, 1, 5])
        main = merge_delta_into_main(alloc, "m", None, delta)
        assert [main.decode_row(r) for r in range(3)] == [5, 1, 5]
        # Main dictionary is sorted: code order == value order.
        assert main.dictionary.extract(0) == 1

    def test_merge_preserves_main_rows_first(self):
        alloc = AddressSpaceAllocator()
        d1 = DeltaStore(alloc, "d1")
        d1.append_many([3, 7])
        main = merge_delta_into_main(alloc, "m1", None, d1)
        d2 = DeltaStore(alloc, "d2")
        d2.append_many([1, 7])
        merged = merge_delta_into_main(alloc, "m2", main, d2)
        assert [merged.decode_row(r) for r in range(4)] == [3, 7, 1, 7]
        assert merged.dictionary.n_values == 3

    def test_merge_nothing_rejected(self):
        alloc = AddressSpaceAllocator()
        with pytest.raises(ColumnStoreError):
            merge_delta_into_main(alloc, "m", None, DeltaStore(alloc, "d"))

    @given(
        first=st.lists(st.integers(0, 100), min_size=1, max_size=60),
        second=st.lists(st.integers(0, 100), min_size=1, max_size=60),
    )
    @settings(max_examples=25, deadline=None)
    def test_merge_property_row_preservation(self, first, second):
        alloc = AddressSpaceAllocator()
        d1 = DeltaStore(alloc, "d1")
        d1.append_many(first)
        main = merge_delta_into_main(alloc, "m1", None, d1)
        d2 = DeltaStore(alloc, "d2")
        d2.append_many(second)
        merged = merge_delta_into_main(alloc, "m2", main, d2)
        assert [merged.decode_row(r) for r in range(merged.n_rows)] == first + second


class TestColumnTable:
    def make_table(self):
        return ColumnTable(AddressSpaceAllocator(), "sales", ["zip", "qty"])

    def test_schema_validation(self):
        with pytest.raises(ColumnStoreError):
            ColumnTable(AddressSpaceAllocator(), "t", [])
        with pytest.raises(ColumnStoreError):
            ColumnTable(AddressSpaceAllocator(), "t", ["a", "a"])

    def test_insert_requires_all_columns(self):
        table = self.make_table()
        with pytest.raises(ColumnStoreError):
            table.insert_rows([{"zip": 1}])

    def test_rows_accumulate_in_delta_until_merge(self):
        table = self.make_table()
        table.insert_rows([{"zip": 1, "qty": 2}, {"zip": 3, "qty": 4}])
        assert table.main_part("zip") is None
        assert table.delta_part("zip").n_rows == 2
        table.merge()
        assert table.main_part("zip").n_rows == 2
        assert table.delta_part("zip").n_rows == 0

    def test_query_spans_main_and_delta(self):
        table = self.make_table()
        rng = np.random.RandomState(0)
        table.insert_rows(
            [{"zip": int(z), "qty": 1} for z in rng.randint(0, 200, 150)]
        )
        table.merge()
        table.insert_rows([{"zip": 999, "qty": 1}, {"zip": 5, "qty": 1}])
        results = table.query_in(
            ExecutionEngine(HASWELL), "zip", [999, 5], strategy="interleaved"
        )
        assert set(results) == {"main", "delta"}
        found = table.matching_row_values("zip", [999, 5])
        n_found_via_query = results["main"].rows.size + results["delta"].rows.size
        assert n_found_via_query == len(found)

    def test_query_unknown_column(self):
        table = self.make_table()
        with pytest.raises(ColumnStoreError):
            table.query_in(ExecutionEngine(HASWELL), "nope", [1])

    def test_gp_strategy_falls_back_on_delta(self):
        """GP applies to Main only; the Delta part silently runs sequential."""
        table = self.make_table()
        table.insert_rows([{"zip": 1, "qty": 1}])
        results = table.query_in(ExecutionEngine(HASWELL), "zip", [1], strategy="gp")
        assert results["delta"].rows.size == 1
