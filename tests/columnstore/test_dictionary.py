"""Tests for Main and Delta dictionaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.dictionary import DeltaDictionary, MainDictionary
from repro.config import HASWELL
from repro.errors import ColumnStoreError, KeyNotFoundError
from repro.indexes.base import INVALID_CODE
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine, Prefetch, Suspend, record_events
from repro.sim.allocator import AddressSpaceAllocator


def run_stream(stream):
    return ExecutionEngine(HASWELL).run(stream)


class TestMainDictionary:
    def test_codes_are_sorted_positions(self):
        md = MainDictionary.from_values(AddressSpaceAllocator(), "m", [9, 1, 5])
        assert [md.extract(c) for c in range(3)] == [1, 5, 9]

    def test_duplicates_collapse(self):
        md = MainDictionary.from_values(AddressSpaceAllocator(), "m", [2, 2, 1])
        assert md.n_values == 2

    def test_locate_roundtrip(self):
        values = [3, 14, 15, 92, 65, 35]
        md = MainDictionary.from_values(AddressSpaceAllocator(), "m", values)
        for value in values:
            assert md.extract(md.locate(value)) == value

    def test_locate_absent(self):
        md = MainDictionary.from_values(AddressSpaceAllocator(), "m", [1, 3])
        assert md.locate(2) == INVALID_CODE
        assert md.locate(-10) == INVALID_CODE
        assert md.locate(99) == INVALID_CODE

    def test_locate_stream_matches_python(self):
        values = sorted(np.random.RandomState(0).choice(10_000, 500, replace=False))
        md = MainDictionary.from_values(AddressSpaceAllocator(), "m", values)
        for probe in list(values[::29]) + [-1, 10_001, 4]:
            assert run_stream(md.locate_stream(int(probe))) == md.locate(int(probe))

    def test_extract_out_of_range(self):
        md = MainDictionary.from_values(AddressSpaceAllocator(), "m", [1])
        with pytest.raises(KeyNotFoundError):
            md.extract(1)
        with pytest.raises(KeyNotFoundError):
            list(md.extract_stream(-1))

    def test_extract_stream_loads_code_position(self):
        from repro.sim import Load

        md = MainDictionary.from_values(AddressSpaceAllocator(), "m", [10, 20, 30])
        events, value = record_events(md.extract_stream(2))
        loads = [e for e in events if isinstance(e, Load)]
        assert value == 30
        assert loads[0].addr == md.array.address_of(2)

    def test_implicit_dictionary(self):
        md = MainDictionary.implicit(AddressSpaceAllocator(), "m", 1 << 12)
        assert md.n_values == 1024
        assert md.locate(100) == 100
        assert md.extract(5) == 5
        assert md.nbytes == 1 << 12

    def test_empty_rejected(self):
        with pytest.raises(ColumnStoreError):
            MainDictionary.from_values(AddressSpaceAllocator(), "m", [])


class TestDeltaDictionary:
    def test_codes_follow_insertion_order(self):
        dd = DeltaDictionary.from_values(AddressSpaceAllocator(), "d", [50, 10, 90])
        assert dd.extract(0) == 50
        assert dd.extract(1) == 10
        assert dd.locate(90) == 2

    def test_duplicate_values_rejected(self):
        with pytest.raises(ColumnStoreError):
            DeltaDictionary.from_values(AddressSpaceAllocator(), "d", [1, 1])

    def test_locate_stream_matches_python(self):
        rng = np.random.RandomState(1)
        values = rng.permutation(2_000)[:700].tolist()
        dd = DeltaDictionary.from_values(AddressSpaceAllocator(), "d", values)
        for probe in values[::31] + [-1, 2_001]:
            assert run_stream(dd.locate_stream(probe)) == dd.locate(probe)

    def test_implicit_permutation_is_bijective(self):
        dd = DeltaDictionary.implicit(AddressSpaceAllocator(), "d", 1 << 12)
        n = dd.n_values
        codes = {dd.locate(v) for v in range(n)}
        assert codes == set(range(n))
        for v in range(0, n, 97):
            assert dd.extract(dd.locate(v)) == v

    def test_implicit_locate_stream(self):
        dd = DeltaDictionary.implicit(AddressSpaceAllocator(), "d", 1 << 14)
        n = dd.n_values
        for probe in [0, 1, n // 3, n - 1, n, -2]:
            expected = dd.locate(probe) if 0 <= probe < n else INVALID_CODE
            assert run_stream(dd.locate_stream(probe)) == expected

    def test_leaf_comparisons_suspend_on_dictionary_access(self):
        """Section 5.5: the Delta adds a suspension per leaf comparison."""
        dd = DeltaDictionary.implicit(AddressSpaceAllocator(), "d", 1 << 16)
        events, _ = record_events(dd.locate_stream(1234, True))
        suspends = sum(isinstance(e, Suspend) for e in events)
        node_prefetches = sum(
            isinstance(e, Prefetch) and e.size == dd.tree.node_size for e in events
        )
        dict_prefetches = sum(
            isinstance(e, Prefetch) and e.size == dd.element_size for e in events
        )
        assert dict_prefetches > 0  # leaf comparisons hit the dictionary
        assert suspends == node_prefetches + dict_prefetches

    def test_interleaved_equals_sequential(self):
        dd = DeltaDictionary.implicit(AddressSpaceAllocator(), "d", 1 << 15)
        probes = np.random.RandomState(2).randint(-5, dd.n_values + 5, 150).tolist()
        seq = run_sequential(
            ExecutionEngine(HASWELL), lambda v, il: dd.locate_stream(v, il), probes
        )
        inter = run_interleaved(
            ExecutionEngine(HASWELL), lambda v, il: dd.locate_stream(v, il), probes, 6
        )
        assert seq == inter

    @given(values=st.sets(st.integers(0, 50_000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_materialized_roundtrip_property(self, values):
        ordered = list(values)
        dd = DeltaDictionary.from_values(AddressSpaceAllocator(), "d", ordered)
        for code, value in enumerate(ordered):
            assert dd.extract(code) == value
            assert dd.locate(value) == code
        assert dd.locate(50_001) == INVALID_CODE
