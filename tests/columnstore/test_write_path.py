"""Tests for the simulated write path: tree inserts and row decoding."""

import numpy as np
import pytest

from repro.columnstore import EncodedColumn
from repro.config import HASWELL
from repro.errors import ColumnStoreError
from repro.indexes.csb_tree import CSBTree, csb_insert_stream
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_tree(keys, node_size=64):
    return CSBTree(AddressSpaceAllocator(), "t", keys, node_size=node_size)


class TestCsbInsertStream:
    def test_insert_stream_matches_structural_insert(self):
        simulated = make_tree(list(range(0, 200, 2)))
        structural = make_tree(list(range(0, 200, 2)))
        engine = ExecutionEngine(HASWELL)
        for key in (1, 3, 151, 199):
            engine.run(csb_insert_stream(simulated, key, key * 10))
            structural.insert(key, key * 10)
        simulated.check_invariants()
        assert list(simulated.iter_items()) == list(structural.iter_items())

    def test_split_charges_group_copy(self):
        """An insert that splits (re)allocates groups and costs more.

        Bulk-load packs leaves full, so the first insert into a region
        splits; the next one lands in the half-empty leaf it produced.
        """
        tree = make_tree(list(range(0, 1000, 10)), node_size=64)
        engine_split = ExecutionEngine(HASWELL)
        n_split = engine_split.run(csb_insert_stream(tree, 11, 11))
        assert n_split > 0  # the packed leaf had to split

        engine_cheap = ExecutionEngine(HASWELL)
        n_cheap = engine_cheap.run(csb_insert_stream(tree, 13, 13))
        assert n_cheap == 0  # room in the freshly split leaf
        assert engine_split.clock > engine_cheap.clock
        tree.check_invariants()

    def test_group_log_reset_after_stream(self):
        tree = make_tree([1, 2, 3])
        ExecutionEngine(HASWELL).run(csb_insert_stream(tree, 10, 10))
        assert tree.group_log is None

    def test_duplicate_insert_raises_through_stream(self):
        from repro.errors import IndexStructureError

        tree = make_tree([1, 2, 3])
        with pytest.raises(IndexStructureError):
            ExecutionEngine(HASWELL).run(csb_insert_stream(tree, 2, 2))

    def test_stores_reach_the_memory_system(self):
        tree = make_tree(list(range(0, 50, 2)))
        engine = ExecutionEngine(HASWELL)
        engine.run(csb_insert_stream(tree, 1, 1))
        # The leaf rewrite touched the caches (RFO fills).
        assert engine.memory.l1.resident_lines > 0


class TestDecodeRows:
    def make_column(self):
        rng = np.random.RandomState(0)
        rows = rng.randint(0, 3_000, 5_000)
        return EncodedColumn.from_values(AddressSpaceAllocator(), "c", rows), rows

    def test_decode_matches_rows(self):
        column, rows = self.make_column()
        picks = [0, 17, 4_999, 123]
        values = column.decode_rows(ExecutionEngine(HASWELL), picks)
        assert values == [int(rows[r]) for r in picks]

    def test_interleaved_decode_matches_sequential(self):
        column, rows = self.make_column()
        picks = list(range(0, 5_000, 71))
        seq = column.decode_rows(ExecutionEngine(HASWELL), picks)
        inter = column.decode_rows(
            ExecutionEngine(HASWELL), picks, strategy="interleaved"
        )
        assert seq == inter

    def test_unknown_strategy(self):
        column, _ = self.make_column()
        with pytest.raises(ColumnStoreError):
            column.decode_rows(ExecutionEngine(HASWELL), [0], strategy="gp")
