"""Focused tests for the code-vector scan cost model."""

import numpy as np
import pytest

from repro.columnstore import EncodedColumn, scan_stream
from repro.columnstore.scan import SCAN_CYCLES_PER_LINE, SCAN_CYCLES_PER_ROW
from repro.config import HASWELL
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_column(rows):
    return EncodedColumn.from_values(AddressSpaceAllocator(), "c", np.asarray(rows))


class TestScanCostModel:
    def test_cost_linear_in_rows(self):
        small = make_column(list(range(100)) * 10)  # 1000 rows
        large = make_column(list(range(100)) * 40)  # 4000 rows
        engine_small = ExecutionEngine(HASWELL)
        engine_small.run(scan_stream(small, [0]))
        engine_large = ExecutionEngine(HASWELL)
        engine_large.run(scan_stream(large, [0]))
        ratio = engine_large.clock / engine_small.clock
        assert 3.0 < ratio < 5.0  # ~4x rows -> ~4x cycles

    def test_expected_cycle_formula(self):
        column = make_column(list(range(1_000)))
        engine = ExecutionEngine(HASWELL)
        engine.run(scan_stream(column, [1]))
        lines = (1_000 * column.code_size + 63) // 64
        expected = lines * SCAN_CYCLES_PER_LINE + int(1_000 * SCAN_CYCLES_PER_ROW)
        # charge_compute may round cycles up for uop throughput.
        assert expected <= engine.clock <= expected * 1.5

    def test_scan_does_not_touch_simulated_caches(self):
        """Streaming scans are modeled as compute: no cache pollution."""
        column = make_column(list(range(5_000)))
        engine = ExecutionEngine(HASWELL)
        engine.run(scan_stream(column, [0, 1, 2]))
        assert engine.memory.stats.loads == 0
        assert engine.memory.l1.resident_lines == 0

    def test_matches_numpy_oracle(self):
        rng = np.random.RandomState(0)
        rows = rng.randint(0, 50, 2_000)
        column = make_column(rows)
        codes = [column.dictionary.locate(v) for v in (3, 7, 11)]
        result = ExecutionEngine(HASWELL).run(scan_stream(column, codes))
        expected = np.flatnonzero(np.isin(rows, [3, 7, 11]))
        assert np.array_equal(result, expected)

    def test_duplicate_codes_in_set_are_harmless(self):
        column = make_column([1, 2, 1, 3])
        code = column.dictionary.locate(1)
        result = ExecutionEngine(HASWELL).run(scan_stream(column, [code, code]))
        assert result.tolist() == [0, 2]


class TestDegenerateCodeSets:
    """Empty and all-miss predicate sets short-circuit the scan."""

    def test_empty_set_matches_nothing_at_zero_cost(self):
        column = make_column(list(range(1_000)))
        engine = ExecutionEngine(HASWELL)
        result = engine.run(scan_stream(column, []))
        assert result.tolist() == []
        assert engine.clock == 0

    def test_all_invalid_set_matches_nothing_at_zero_cost(self):
        from repro.indexes.base import INVALID_CODE

        column = make_column(list(range(1_000)))
        engine = ExecutionEngine(HASWELL)
        result = engine.run(scan_stream(column, [INVALID_CODE, INVALID_CODE]))
        assert result.tolist() == []
        assert engine.clock == 0

    def test_invalid_codes_mixed_with_live_ones_are_dropped(self):
        from repro.indexes.base import INVALID_CODE

        column = make_column([5, 6, 5, 7])
        code = column.dictionary.locate(5)
        result = ExecutionEngine(HASWELL).run(
            scan_stream(column, [INVALID_CODE, code])
        )
        assert result.tolist() == [0, 2]


class TestBatchedScan:
    """scan_batch_stream partitions tile the full scan exactly."""

    def test_batches_telescope_to_full_scan_cycles_and_matches(self):
        from repro.columnstore.scan import scan_batch_stream

        rng = np.random.RandomState(3)
        rows = rng.randint(0, 40, 2_731)  # deliberately not line-aligned
        column = make_column(rows)
        codes = [column.dictionary.locate(v) for v in (1, 4, 9)]

        full_engine = ExecutionEngine(HASWELL)
        full = full_engine.run(scan_stream(column, codes))

        batch_engine = ExecutionEngine(HASWELL)
        pieces = []
        for start in range(0, column.n_rows, 700):
            stop = min(start + 700, column.n_rows)
            pieces.append(
                batch_engine.run(scan_batch_stream(column, codes, start, stop))
            )
        stitched = np.concatenate(pieces)
        assert np.array_equal(stitched, full)
        assert batch_engine.clock == full_engine.clock

    def test_bad_ranges_raise(self):
        from repro.columnstore.scan import scan_batch_stream
        from repro.errors import ColumnStoreError

        column = make_column([1, 2, 3])
        engine = ExecutionEngine(HASWELL)
        with pytest.raises(ColumnStoreError):
            engine.run(scan_batch_stream(column, [0], 2, 1))
        with pytest.raises(ColumnStoreError):
            engine.run(scan_batch_stream(column, [0], 0, 99))
