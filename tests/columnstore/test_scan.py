"""Focused tests for the code-vector scan cost model."""

import numpy as np
import pytest

from repro.columnstore import EncodedColumn, scan_stream
from repro.columnstore.scan import SCAN_CYCLES_PER_LINE, SCAN_CYCLES_PER_ROW
from repro.config import HASWELL
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_column(rows):
    return EncodedColumn.from_values(AddressSpaceAllocator(), "c", np.asarray(rows))


class TestScanCostModel:
    def test_cost_linear_in_rows(self):
        small = make_column(list(range(100)) * 10)  # 1000 rows
        large = make_column(list(range(100)) * 40)  # 4000 rows
        engine_small = ExecutionEngine(HASWELL)
        engine_small.run(scan_stream(small, [0]))
        engine_large = ExecutionEngine(HASWELL)
        engine_large.run(scan_stream(large, [0]))
        ratio = engine_large.clock / engine_small.clock
        assert 3.0 < ratio < 5.0  # ~4x rows -> ~4x cycles

    def test_expected_cycle_formula(self):
        column = make_column(list(range(1_000)))
        engine = ExecutionEngine(HASWELL)
        engine.run(scan_stream(column, [1]))
        lines = (1_000 * column.code_size + 63) // 64
        expected = lines * SCAN_CYCLES_PER_LINE + int(1_000 * SCAN_CYCLES_PER_ROW)
        # charge_compute may round cycles up for uop throughput.
        assert expected <= engine.clock <= expected * 1.5

    def test_scan_does_not_touch_simulated_caches(self):
        """Streaming scans are modeled as compute: no cache pollution."""
        column = make_column(list(range(5_000)))
        engine = ExecutionEngine(HASWELL)
        engine.run(scan_stream(column, [0, 1, 2]))
        assert engine.memory.stats.loads == 0
        assert engine.memory.l1.resident_lines == 0

    def test_matches_numpy_oracle(self):
        rng = np.random.RandomState(0)
        rows = rng.randint(0, 50, 2_000)
        column = make_column(rows)
        codes = [column.dictionary.locate(v) for v in (3, 7, 11)]
        result = ExecutionEngine(HASWELL).run(scan_stream(column, codes))
        expected = np.flatnonzero(np.isin(rows, [3, 7, 11]))
        assert np.array_equal(result, expected)

    def test_duplicate_codes_in_set_are_harmless(self):
        column = make_column([1, 2, 1, 3])
        code = column.dictionary.locate(1)
        result = ExecutionEngine(HASWELL).run(scan_stream(column, [code, code]))
        assert result.tolist() == [0, 2]
