"""Tests for encoded columns, scans, and IN-predicate queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import (
    EncodedColumn,
    MainDictionary,
    run_in_predicate,
    scan_matching_rows,
)
from repro.config import HASWELL
from repro.errors import ColumnStoreError
from repro.indexes.base import INVALID_CODE
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_column(row_values, name="col"):
    return EncodedColumn.from_values(
        AddressSpaceAllocator(), name, np.asarray(row_values)
    )


class TestEncodedColumn:
    def test_roundtrip_decoding(self):
        rows = [5, 3, 5, 9, 3]
        column = make_column(rows)
        assert [column.decode_row(r) for r in range(5)] == rows
        assert column.dictionary.n_values == 3

    def test_empty_rejected(self):
        with pytest.raises(ColumnStoreError):
            make_column([])

    def test_out_of_range_codes_rejected(self):
        alloc = AddressSpaceAllocator()
        dictionary = MainDictionary.from_values(alloc, "d", [1, 2])
        with pytest.raises(ColumnStoreError):
            EncodedColumn(dictionary, np.array([0, 5]), alloc, "c")

    def test_encode_values_all_strategies_agree(self):
        rng = np.random.RandomState(0)
        rows = rng.randint(0, 2_000, 4_000)
        column = make_column(rows)
        probes = rng.randint(-10, 2_010, 80).tolist()
        results = {
            strategy: column.encode_values(
                ExecutionEngine(HASWELL), probes, strategy=strategy, group_size=6
            )
            for strategy in ("sequential", "interleaved", "gp", "amac")
        }
        expected = [column.dictionary.locate(p) for p in probes]
        for strategy, got in results.items():
            assert got == expected, strategy

    def test_unknown_strategy_rejected(self):
        column = make_column([1, 2, 3])
        with pytest.raises(ColumnStoreError):
            column.encode_values(ExecutionEngine(HASWELL), [1], strategy="spp")

    def test_gp_rejected_for_delta(self):
        from repro.columnstore import DeltaDictionary

        alloc = AddressSpaceAllocator()
        delta_dict = DeltaDictionary.from_values(alloc, "dd", [3, 1, 2])
        column = EncodedColumn(delta_dict, np.array([0, 1, 2]), alloc, "c")
        with pytest.raises(ColumnStoreError, match="Main"):
            column.encode_values(ExecutionEngine(HASWELL), [1], strategy="gp")


class TestPolicyDrivenEncode:
    """The query path defaults to the calibration-driven policy."""

    def test_small_dictionary_policy_is_sequential(self):
        column = make_column(list(range(1_000)))
        policy = column.locate_policy(ExecutionEngine(HASWELL), 100)
        assert not policy.interleave
        assert policy.executor_name == "sequential"

    def test_large_dictionary_policy_interleaves(self):
        from repro.columnstore import MainDictionary

        alloc = AddressSpaceAllocator()
        dictionary = MainDictionary.implicit(alloc, "d", 256 << 20)
        column = EncodedColumn(dictionary, np.array([0, 1]), alloc, "c")
        policy = column.locate_policy(ExecutionEngine(HASWELL), 10_000)
        assert policy.interleave
        assert policy.technique in ("GP", "AMAC", "CORO")

    def test_delta_policy_candidates_are_coroutine_only(self):
        from repro.columnstore import DeltaDictionary

        alloc = AddressSpaceAllocator()
        delta_dict = DeltaDictionary.implicit(alloc, "dd", 256 << 20)
        column = EncodedColumn(delta_dict, np.array([0, 1]), alloc, "c")
        policy = column.locate_policy(ExecutionEngine(HASWELL), 10_000)
        assert policy.interleave
        assert policy.technique == "CORO"

    def test_default_query_matches_forced_sequential(self):
        rng = np.random.RandomState(9)
        rows = rng.randint(0, 400, 2_000)
        column = make_column(rows)
        predicates = rng.randint(0, 450, 30).tolist()
        defaulted = run_in_predicate(ExecutionEngine(HASWELL), column, predicates)
        forced = run_in_predicate(
            ExecutionEngine(HASWELL), column, predicates, strategy="sequential"
        )
        # The tiny dictionary fits the LLC, so the policy picks
        # sequential — identical results *and* identical cycles.
        assert defaulted.codes == forced.codes
        assert defaulted.total_cycles == forced.total_cycles

    def test_explicit_policy_override(self):
        from repro.interleaving import ExecutionPolicy

        rng = np.random.RandomState(11)
        rows = rng.randint(0, 400, 2_000)
        column = make_column(rows)
        predicates = rng.randint(0, 450, 30).tolist()
        policy = ExecutionPolicy(True, 4, "forced for test", technique="CORO")
        overridden = run_in_predicate(
            ExecutionEngine(HASWELL), column, predicates, policy=policy
        )
        forced = run_in_predicate(
            ExecutionEngine(HASWELL), column, predicates,
            strategy="interleaved", group_size=4,
        )
        assert overridden.codes == forced.codes
        assert overridden.total_cycles == forced.total_cycles


class TestScan:
    def test_matching_rows(self):
        column = make_column([10, 20, 10, 30, 20, 20])
        codes = [column.dictionary.locate(20)]
        rows = scan_matching_rows(ExecutionEngine(HASWELL), column, codes)
        assert rows.tolist() == [1, 4, 5]

    def test_empty_code_set(self):
        column = make_column([1, 2, 3])
        rows = scan_matching_rows(ExecutionEngine(HASWELL), column, [])
        assert rows.size == 0

    def test_scan_cost_scales_with_rows_not_dictionary(self):
        small = make_column(list(range(100)) * 2)
        engine_small = ExecutionEngine(HASWELL)
        scan_matching_rows(engine_small, small, [0])
        big_dict = make_column(list(range(200)))
        engine_big = ExecutionEngine(HASWELL)
        scan_matching_rows(engine_big, big_dict, [0])
        assert engine_small.clock == engine_big.clock  # both 200 rows


class TestInPredicateQuery:
    def test_matches_brute_force(self):
        rng = np.random.RandomState(3)
        rows = rng.randint(0, 500, 3_000)
        column = make_column(rows)
        predicates = rng.randint(0, 600, 40).tolist()
        result = run_in_predicate(
            ExecutionEngine(HASWELL), column, predicates, strategy="interleaved"
        )
        expected = np.flatnonzero(np.isin(rows, list(set(predicates))))
        assert np.array_equal(np.sort(result.rows), expected)

    def test_absent_values_encode_invalid(self):
        column = make_column([1, 2, 3])
        result = run_in_predicate(ExecutionEngine(HASWELL), column, [2, 99])
        assert result.codes[1] == INVALID_CODE
        assert column.decode_row(int(result.rows[0])) == 2

    def test_profiles_partition_total(self):
        column = make_column(list(range(2_000)))
        engine = ExecutionEngine(HASWELL)
        result = run_in_predicate(engine, column, list(range(0, 2_000, 50)))
        assert result.locate.cycles > 0
        assert result.scan.cycles > 0
        assert result.total_cycles == engine.clock
        assert 0 < result.locate_fraction < 1

    def test_response_time_conversion(self):
        column = make_column([1])
        result = run_in_predicate(ExecutionEngine(HASWELL), column, [1])
        assert result.response_time_ms() == pytest.approx(
            result.total_cycles / 2.6e6
        )

    def test_strategy_does_not_change_rows(self):
        rng = np.random.RandomState(4)
        rows = rng.randint(0, 300, 1_000)
        column = make_column(rows)
        predicates = rng.randint(0, 350, 25).tolist()
        outcomes = [
            np.sort(
                run_in_predicate(
                    ExecutionEngine(HASWELL), column, predicates, strategy=s
                ).rows
            ).tolist()
            for s in ("sequential", "interleaved", "gp", "amac")
        ]
        assert all(o == outcomes[0] for o in outcomes)

    @given(
        rows=st.lists(st.integers(0, 50), min_size=1, max_size=200),
        predicates=st.lists(st.integers(0, 60), min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_query_equals_brute_force_property(self, rows, predicates):
        column = make_column(rows)
        result = run_in_predicate(
            ExecutionEngine(HASWELL), column, predicates, strategy="interleaved",
            group_size=3,
        )
        expected = [i for i, v in enumerate(rows) if v in set(predicates)]
        assert sorted(result.rows.tolist()) == expected
