"""Routing: replica-set invariants and minimal movement on crash."""

import random

import pytest

from repro.cluster.routing import ClusterRouter, HashRing
from repro.errors import ConfigurationError

KEYS = list(range(0, 4000, 13))


class TestHashRing:
    def test_same_parameters_same_placement(self):
        a = HashRing(5)
        b = HashRing(5)
        for key in KEYS[:200]:
            assert a.preference(key) == b.preference(key)

    def test_preference_is_a_permutation_of_nodes(self):
        ring = HashRing(6)
        for key in KEYS[:200]:
            assert sorted(ring.preference(key)) == list(range(6))

    def test_every_key_routes_to_exactly_r_distinct_live_nodes(self):
        ring = HashRing(6)
        rng = random.Random(7)
        for r in (1, 2, 3):
            for key in KEYS[:100]:
                alive = rng.sample(range(6), rng.randint(r, 6))
                replicas = ring.replicas(key, r, alive=alive)
                assert len(replicas) == r
                assert len(set(replicas)) == r
                assert all(node in alive for node in replicas)

    def test_dead_holders_pad_when_too_few_live(self):
        ring = HashRing(4)
        replicas = ring.replicas(KEYS[0], 3, alive=[0])
        assert len(set(replicas)) == 3
        assert replicas[0] == 0

    def test_crash_moves_only_the_crashed_nodes_keys(self):
        ring = HashRing(5)
        r = 2
        crashed = 2
        alive = [n for n in range(5) if n != crashed]
        moved = 0
        for key in KEYS:
            before = ring.replicas(key, r)
            after = ring.replicas(key, r, alive=alive)
            if crashed not in before:
                # Keys the crashed node never held do not move at all.
                assert after == before
            else:
                moved += 1
                # Survivors keep their copy, in the same preference
                # order; the lost copy goes to the next live node the
                # key's preference list already named.
                survivors = [n for n in before if n != crashed]
                assert [n for n in after if n in survivors] == survivors
                prefs = ring.preference(key)
                replacement = [n for n in after if n not in survivors]
                assert replacement == [
                    n for n in prefs if n in alive and n not in survivors
                ][:1]
        assert moved > 0  # the property was actually exercised

    def test_ring_validation(self):
        with pytest.raises(ConfigurationError):
            HashRing(0)
        with pytest.raises(ConfigurationError):
            HashRing(2, n_vnodes=0)
        with pytest.raises(ConfigurationError):
            HashRing(2).replicas(1, 3)


class TestClusterRouter:
    def test_split_partitions_every_position(self):
        router = ClusterRouter(HashRing(4), replication=2)
        keys = KEYS[:97]
        groups = router.split(keys)
        positions = sorted(p for group in groups.values() for p in group)
        assert positions == list(range(len(keys)))
        assert list(groups) == sorted(groups)
        for node, group in groups.items():
            for position in group:
                assert router.primary(keys[position]) == node

    def test_split_respects_liveness(self):
        router = ClusterRouter(HashRing(4), replication=2)
        keys = KEYS[:50]
        groups = router.split(keys, alive=[1, 3])
        assert set(groups) <= {1, 3}

    def test_replication_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterRouter(HashRing(3), replication=4)
        with pytest.raises(ConfigurationError):
            ClusterRouter(HashRing(3), replication=0)

    def test_replica_sets_are_stable_across_instances(self):
        a = ClusterRouter(HashRing(5), replication=3)
        b = ClusterRouter(HashRing(5), replication=3)
        for key in KEYS[:100]:
            assert a.replicas(key) == b.replicas(key)
