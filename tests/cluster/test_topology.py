"""Topology: placement, tier resolution, and the cost model."""

import pytest

from repro.cluster.topology import (
    FREE_INTERCONNECT,
    INTERCONNECT_TIERS,
    TOPOLOGY_PRESETS,
    ClusterTopology,
    InterconnectCosts,
)
from repro.errors import ConfigurationError


class TestInterconnectCosts:
    def test_tier_costs(self):
        costs = InterconnectCosts(numa_cycles=100, cxl_cycles=300)
        assert costs.for_tier("local") == 0
        assert costs.for_tier("numa") == 100
        assert costs.for_tier("cxl") == 300

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectCosts().for_tier("warp")

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectCosts(numa_cycles=-1)

    def test_cxl_cannot_undercut_numa(self):
        with pytest.raises(ConfigurationError):
            InterconnectCosts(numa_cycles=500, cxl_cycles=100)

    def test_free_interconnect_is_all_zero(self):
        for tier in INTERCONNECT_TIERS:
            assert FREE_INTERCONNECT.for_tier(tier) == 0


class TestClusterTopology:
    def test_single_is_one_free_node(self):
        topo = ClusterTopology.single()
        assert topo.n_nodes == 1
        assert topo.tier(0, 0) == "local"
        assert topo.max_cost() == 0

    def test_planet_pods_pair_nodes(self):
        topo = ClusterTopology.planet(8)
        # Pod neighbours are NUMA-remote; across pods is the CXL tier.
        assert topo.tier(0, 0) == "local"
        assert topo.tier(0, 1) == "numa"
        assert topo.tier(0, 2) == "cxl"
        assert topo.tier(6, 7) == "numa"
        assert topo.cost(0, 1) == InterconnectCosts().numa_cycles
        assert topo.cost(0, 2) == InterconnectCosts().cxl_cycles
        assert topo.max_cost() == InterconnectCosts().cxl_cycles

    def test_tier_is_symmetric(self):
        topo = ClusterTopology.planet(6)
        for a in range(6):
            for b in range(6):
                assert topo.tier(a, b) == topo.tier(b, a)

    def test_planet_regions_follow_pods(self):
        topo = ClusterTopology.planet(8)
        assert len(topo.regions) == 4
        for region in topo.regions:
            nodes = topo.nodes_in_region(region)
            assert len(nodes) == 2
            assert topo.tier(*nodes) == "numa"

    def test_node_out_of_range_rejected(self):
        topo = ClusterTopology.planet(2)
        with pytest.raises(ConfigurationError):
            topo.tier(0, 2)

    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterTopology(node_pods=(), node_regions=())

    def test_mismatched_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterTopology(node_pods=(0, 0), node_regions=("us-east",))

    def test_as_dict_round_trips_placement(self):
        topo = ClusterTopology.planet(4)
        doc = topo.as_dict()
        assert doc["n_nodes"] == 4
        assert doc["node_pods"] == [0, 0, 1, 1]
        assert len(doc["node_regions"]) == 4
        assert doc["numa_cycles"] == InterconnectCosts().numa_cycles
        assert doc["cxl_cycles"] == InterconnectCosts().cxl_cycles


class TestPresets:
    def test_single_preset_scales_with_free_costs(self):
        topo = TOPOLOGY_PRESETS["single"](4)
        assert topo.n_nodes == 4
        assert topo.max_cost() == 0

    def test_single_preset_degenerates(self):
        assert TOPOLOGY_PRESETS["single"](1) == ClusterTopology.single()

    def test_planet_preset_charges(self):
        topo = TOPOLOGY_PRESETS["planet"](4)
        assert topo.n_nodes == 4
        assert topo.max_cost() > 0
