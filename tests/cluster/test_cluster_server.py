"""ClusterServer: degenerate bit-identity, node-fault lowering, accounting."""

import dataclasses

import numpy as np
import pytest

from repro.cluster.server import ClusterConfig, ClusterReport, ClusterServer
from repro.cluster.topology import ClusterTopology
from repro.config import scaled
from repro.errors import ConfigurationError
from repro.faults.events import NodeCrash, NodeSlow, ShardCrash
from repro.faults.schedule import FaultSchedule, resolve_schedule
from repro.service.arrivals import make_arrivals
from repro.service.server import ServiceConfig, ServiceServer
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.generators import make_table

ARCH = scaled(64)

RESILIENT = dict(
    max_batch=16,
    max_wait_cycles=2500,
    queue_capacity=48,
    overload_policy="reject",
    n_shards=2,
    warmup_requests=16,
    slo_cycles=25_000,
    max_retries=2,
    retry_backoff_cycles=1500,
    hedge_after_cycles=9000,
    degradation="adaptive",
    overflow_fallback=True,
    technique="CORO",
)


def _serve(server_cls, config, *, faults=None, n=120, seed=5, homes=None):
    allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
    table = make_table(allocator, "serve/dict", 1 << 20)
    rng = np.random.RandomState(seed + 11)
    values = [int(v) for v in rng.randint(0, table.size, n)]
    arrivals = make_arrivals("poisson", n, seed, rate_per_kcycle=2.0)
    server = server_cls(table, config, arch=ARCH, seed=seed, faults=faults)
    if server_cls is ClusterServer:
        return server.serve(arrivals, values, homes=homes)
    return server.serve(arrivals, values)


def _schedule(faults, seed=5):
    return resolve_schedule(faults, horizon=300_000, n_shards=2, seed=seed)


class TestDegenerateIdentity:
    """1 node, R=1, zero interconnect == the plain service server."""

    @pytest.mark.parametrize("faults", [None, "chaos-quick"])
    def test_bit_identical_to_service_server(self, faults):
        base = _serve(
            ServiceServer, ServiceConfig(**RESILIENT), faults=_schedule(faults)
        )
        cluster = _serve(
            ClusterServer,
            ClusterConfig(**RESILIENT, n_nodes=1, replication=1),
            faults=_schedule(faults),
        )
        assert isinstance(cluster, ClusterReport)
        assert cluster.latencies == base.latencies
        assert cluster.counters == base.counters
        assert cluster.resilience == base.resilience
        assert cluster.exemplars.as_dict() == base.exemplars.as_dict()
        for mine, theirs in zip(cluster.requests, base.requests):
            assert dataclasses.astuple(mine) == dataclasses.astuple(theirs)

    def test_degenerate_report_has_empty_cluster_accounting(self):
        report = _serve(
            ClusterServer, ClusterConfig(**RESILIENT, n_nodes=1, replication=1)
        )
        assert report.interconnect_cycles == 0
        assert report.cross_node_hedges == 0
        assert report.crossings()["local"] == report.completed
        assert set(report.node_batches()) == {"node0", "overflow"}


class TestNodeFaultLowering:
    def _server(self, schedule):
        allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
        table = make_table(allocator, "serve/dict", 1 << 20)
        return ClusterServer(
            table,
            ClusterConfig(**RESILIENT, n_nodes=2, replication=2),
            arch=ARCH,
            seed=0,
            faults=schedule,
        )

    def test_node_crash_downs_every_shard_of_that_node_only(self):
        schedule = FaultSchedule(
            events=(NodeCrash(at=1000, node=1, duration=500),)
        )
        server = self._server(schedule)
        injector = server._injector
        # Node 1 hosts global shards 2 and 3; both sit out the window.
        for shard in (2, 3):
            assert injector.available_from(shard, 1000) == 1500
        for shard in (0, 1):
            assert injector.available_from(shard, 1000) == 1000
        kinds = {e.kind for e in injector.schedule.events}
        assert kinds == {"shard_crash"}

    def test_node_slow_brownouts_every_shard_of_that_node(self):
        schedule = FaultSchedule(
            events=(NodeSlow(at=1000, node=0, duration=800, extra_latency=200),)
        )
        server = self._server(schedule)
        injector = server._injector
        for shard in (0, 1):
            assert injector.extra_latency_at(shard, 1200) == 200
        for shard in (2, 3):
            assert injector.extra_latency_at(shard, 1200) == 0

    def test_nodeless_event_hits_the_whole_fleet(self):
        schedule = FaultSchedule(events=(NodeCrash(at=1000, duration=500),))
        server = self._server(schedule)
        for shard in range(4):
            assert server._injector.available_from(shard, 1000) == 1500

    def test_shard_events_pass_through_unchanged(self):
        schedule = FaultSchedule(
            events=(ShardCrash(at=1000, shard=0, duration=500),)
        )
        server = self._server(schedule)
        # No node events -> the very same schedule object, so the
        # retry-jitter stream cannot drift.
        assert server._injector.schedule is schedule

    def test_empty_schedule_is_bit_identical_to_no_faults(self):
        config = ClusterConfig(**RESILIENT, n_nodes=2, replication=2)
        plain = _serve(ClusterServer, config, faults=None)
        empty = _serve(ClusterServer, config, faults=FaultSchedule(events=()))
        assert plain.latencies == empty.latencies
        assert plain.counters == empty.counters
        assert plain.resilience == empty.resilience


class TestClusterAccounting:
    def test_node_counters_cover_fleet_and_sum_to_totals(self):
        config = ClusterConfig(**RESILIENT, n_nodes=3, replication=2)
        report = _serve(ClusterServer, config)
        batches = report.node_batches()
        completed = report.node_completed()
        assert set(batches) == {"node0", "node1", "node2", "overflow"}
        assert sum(batches.values()) == report.counters["batches"]
        assert sum(completed.values()) == report.completed

    def test_homes_drive_interconnect_charges(self):
        config = ClusterConfig(**RESILIENT, n_nodes=4, replication=2)
        topology = ClusterTopology.planet(4)
        allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
        table = make_table(allocator, "serve/dict", 1 << 20)
        rng = np.random.RandomState(16)
        values = [int(v) for v in rng.randint(0, table.size, 120)]
        arrivals = make_arrivals("poisson", 120, 5, rate_per_kcycle=2.0)
        server = ClusterServer(
            table, config, arch=ARCH, seed=5, topology=topology
        )
        homes = [i % 4 for i in range(120)]
        report = server.serve(arrivals, values, homes=homes)
        crossings = report.crossings()
        assert sum(crossings.values()) == report.completed
        assert crossings["numa"] + crossings["cxl"] > 0
        assert report.interconnect_cycles > 0

    def test_replica_hedging_crosses_nodes(self):
        # Chaos + queueing on a replicated fleet must eventually hedge
        # onto a replica node (the cross-node path the PR adds).
        config = ClusterConfig(
            **{**RESILIENT, "hedge_after_cycles": 2000},
            n_nodes=4,
            replication=2,
        )
        report = _serve(
            ClusterServer,
            config,
            faults=resolve_schedule(
                "cluster-chaos", horizon=300_000, n_shards=4, seed=5
            ),
            n=160,
        )
        assert report.cross_node_hedges > 0
        assert report.resilience["hedges"] >= report.cross_node_hedges


class TestClusterConfigValidation:
    def test_replication_must_fit_the_fleet(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_nodes=2, replication=3)
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_nodes=0)

    def test_topology_must_match_the_config(self):
        allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
        table = make_table(allocator, "serve/dict", 1 << 20)
        with pytest.raises(ConfigurationError):
            ClusterServer(
                table,
                ClusterConfig(**RESILIENT, n_nodes=2, replication=2),
                arch=ARCH,
                topology=ClusterTopology.planet(4),
            )

    def test_plain_service_config_rejected(self):
        allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
        table = make_table(allocator, "serve/dict", 1 << 20)
        with pytest.raises(ConfigurationError):
            ClusterServer(table, ServiceConfig(**RESILIENT), arch=ARCH)
