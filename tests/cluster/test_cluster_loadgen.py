"""Cluster loadgen: user keys, home mapping, and repro.cluster/1 docs."""

import dataclasses

import pytest

from repro.cluster.loadgen import (
    CLUSTER_SCHEMA,
    home_nodes,
    run_cluster_scenario,
    user_keys,
)
from repro.cluster.topology import ClusterTopology
from repro.errors import WorkloadError
from repro.service.arrivals import make_arrivals
from repro.service.loadgen import run_scenario
from repro.service.scenarios import get_scenario


def _small(name, **overrides):
    """Shrink a registered cluster scenario to unit-test scale."""
    scenario = get_scenario(name)
    defaults = dict(
        loads=(0.8,),
        techniques=("CORO",),
        n_requests=64,
        table_bytes=1 << 20,
    )
    defaults.update(overrides)
    return dataclasses.replace(scenario, **defaults)


class TestUserKeys:
    def test_deterministic_and_in_range(self):
        scenario = _small("cluster-steady")
        keys = user_keys(scenario, 4096, seed=3)
        assert keys == user_keys(scenario, 4096, seed=3)
        assert len(keys) == scenario.n_requests
        assert all(0 <= key < 4096 for key in keys)

    def test_seed_moves_the_population(self):
        scenario = _small("cluster-steady")
        assert user_keys(scenario, 4096, seed=3) != user_keys(
            scenario, 4096, seed=4
        )

    def test_same_user_same_key(self):
        # A population of one user: every request probes the same slot.
        scenario = _small("cluster-steady", n_users=1)
        assert len(set(user_keys(scenario, 1 << 16, seed=0))) == 1


class TestHomeNodes:
    def test_diurnal_regions_map_to_region_node_groups(self):
        scenario = _small("planet-quick")
        topology = ClusterTopology.planet(scenario.n_nodes)
        arrivals = make_arrivals(
            "diurnal",
            scenario.n_requests,
            seed=0,
            base_rate_per_kcycle=2.0,
            **scenario.arrival_params,
        )
        homes = home_nodes(scenario, topology, arrivals)
        assert len(homes) == scenario.n_requests
        groups = [
            topology.nodes_in_region(region) for region in topology.regions
        ]
        for index, home in enumerate(homes):
            expected = groups[arrivals.regions[index] % len(groups)]
            assert home in expected

    def test_geography_free_arrivals_round_robin_the_fleet(self):
        scenario = _small("cluster-steady")
        topology = ClusterTopology.planet(scenario.n_nodes)
        arrivals = make_arrivals(
            "poisson", scenario.n_requests, seed=0, rate_per_kcycle=2.0
        )
        homes = home_nodes(scenario, topology, arrivals)
        assert homes == [
            index % topology.n_nodes for index in range(scenario.n_requests)
        ]


class TestClusterDocuments:
    def test_same_seed_bit_identical_clean(self):
        scenario = _small("cluster-steady")
        assert run_cluster_scenario(scenario, seed=3) == run_cluster_scenario(
            scenario, seed=3
        )

    def test_same_seed_bit_identical_under_chaos(self):
        scenario = _small("planet-quick", loads=(1.0,))
        assert run_cluster_scenario(scenario, seed=1) == run_cluster_scenario(
            scenario, seed=1
        )

    def test_document_shape(self):
        steady = run_cluster_scenario(_small("cluster-steady"), seed=0)
        assert steady["schema"] == CLUSTER_SCHEMA
        assert steady["kind"] == "cluster"
        assert "fault_profile" not in steady
        assert steady["n_nodes"] == 4
        assert steady["interconnect"]["n_nodes"] == 4
        assert len(steady["regions"]) == 2
        point = steady["points"][0]
        assert sum(point["node_batches"].values()) == point["batches"]
        assert sum(point["node_completed"].values()) == point["completed"]

        chaotic = run_cluster_scenario(_small("planet-quick"), seed=0)
        assert chaotic["fault_profile"] == "cluster-chaos"
        assert chaotic["points"][0]["fault_events"] > 0

    def test_service_entry_point_delegates(self):
        scenario = _small("cluster-steady")
        assert run_scenario(scenario, seed=2) == run_cluster_scenario(
            scenario, seed=2
        )

    def test_non_cluster_scenario_rejected(self):
        with pytest.raises(WorkloadError):
            run_cluster_scenario("quick")
