"""Tests for the ``repro.api`` facade, the package-root re-exports, the
deprecation shims, and the CLI's exit-code contract."""

import importlib.util
import json
import pathlib
import warnings

import pytest

import repro
from repro import api, scaled
from repro.__main__ import main
from repro.errors import ConfigurationError, SchedulerError, WorkloadError
from repro.interleaving.executor import BulkLookup, get_executor
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.engine import ExecutionEngine
from repro.workloads.generators import lookup_values, make_table

ARCH = scaled(64)
ROOT = pathlib.Path(__file__).parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_bench_schema", ROOT / "benchmarks" / "check_bench_schema.py"
)
check_bench_schema = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and check_bench_schema)


@pytest.fixture(scope="module")
def table():
    allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
    return make_table(allocator, "api-test/dict", 1 << 20)


@pytest.fixture(scope="module")
def values(table):
    return lookup_values(300, table, seed=0)


class TestLookupBatch:
    def test_policy_pick_matches_forced_sequential_results(self, table, values):
        sequential = api.lookup_batch(
            table, values, technique="sequential", arch=ARCH
        )
        picked = api.lookup_batch(table, values, arch=ARCH)
        assert sequential.results == picked.results
        assert sequential.technique == "sequential"
        assert picked.technique in ("GP", "AMAC", "CORO")
        assert picked.cycles < sequential.cycles  # interleaving pays off
        assert picked.n_lookups == len(values)
        assert picked.cycles_per_lookup == picked.cycles / len(values)

    def test_forced_technique_and_group(self, table, values):
        result = api.lookup_batch(
            table, values, technique="CORO", group_size=4, arch=ARCH
        )
        assert result.technique == "CORO"
        assert result.group_size == 4

    def test_unknown_technique_propagates(self, table, values):
        with pytest.raises(WorkloadError, match="registered"):
            api.lookup_batch(table, values, technique="nope", arch=ARCH)


class TestInjectFaults:
    def test_slowdown_is_deterministic(self, table, values):
        first = api.inject_faults(
            table, values, faults="latency-spikes", arch=ARCH, seed=2
        )
        second = api.inject_faults(
            table, values, faults="latency-spikes", arch=ARCH, seed=2
        )
        assert first == second
        assert first.faults_by_kind == second.faults_by_kind
        assert first.slowdown > 1.0
        assert first.fault_events > 0

    def test_results_survive_the_chaos(self, table, values):
        clean = api.lookup_batch(table, values, technique="CORO", arch=ARCH)
        chaotic = api.inject_faults(table, values, faults="chaos", arch=ARCH)
        assert chaotic.results == clean.results

    def test_none_profile_is_the_baseline(self, table, values):
        report = api.inject_faults(table, values, faults="none", arch=ARCH)
        assert report.slowdown == 1.0
        assert report.fault_events == 0
        assert report.cycles == report.baseline_cycles

    def test_outages_charge_stall_cycles(self, table, values):
        report = api.inject_faults(table, values, faults="shard-outage", arch=ARCH)
        assert report.stall_cycles > 0
        assert report.cycles >= report.baseline_cycles + report.stall_cycles

    def test_bad_chunk_size_rejected(self, table, values):
        with pytest.raises(WorkloadError, match="chunk_size"):
            api.inject_faults(
                table, values, faults="none", chunk_size=0, arch=ARCH
            )


class TestServe:
    def test_serve_quick_is_typed_and_plain(self):
        result = api.serve("quick", seed=0)
        assert result.scenario == "quick"
        assert not result.chaos
        assert result.schema == "repro.service/1"
        point = result.point("CORO", 0.5)
        assert point["technique"] == "CORO"
        assert "serve quick" in result.render()

    def test_serve_with_faults_is_chaos(self):
        result = api.serve("quick", seed=0, faults="chaos-quick")
        assert result.chaos
        assert result.schema == "repro.chaos/1"
        assert "faults=chaos-quick" in result.render()

    def test_missing_point_raises(self):
        result = api.serve("quick", seed=0)
        with pytest.raises(WorkloadError, match="no point"):
            result.point("CORO", 99.0)

    def test_unknown_scenario_raises(self):
        with pytest.raises(WorkloadError, match="registered|quick"):
            api.serve("nope")


class TestRunExperiment:
    def test_unknown_experiment_raises(self):
        with pytest.raises(WorkloadError, match="available"):
            api.run_experiment("table99")

    def test_table5_runs_and_renders(self):
        result = api.run_experiment("table5")
        assert result.name == "table5"
        assert result.doc["experiment"] == "table5"
        assert result.doc["rows"]
        assert result.render().strip()


class TestFacadeExports:
    def test_package_root_reexports_the_verbs(self):
        for name in ("run_experiment", "serve", "lookup_batch", "inject_faults"):
            assert getattr(repro, name) is getattr(api, name)

    def test_every_all_name_resolves(self):
        for name in repro.__all__:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                assert getattr(repro, name) is not None

    def test_deep_import_shim_warns_but_works(self):
        with pytest.deprecated_call(match="repro.api.serve"):
            legacy = repro.run_scenario
        from repro.service import run_scenario

        assert legacy is run_scenario

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing


class TestExecutorKwargAliases:
    def make(self, n=64):
        table = make_table(
            AddressSpaceAllocator(page_size=ARCH.page_size), "alias/dict", 1 << 18
        )
        values = lookup_values(n, table, seed=1)
        return BulkLookup.sorted_array(table, values), table

    def test_legacy_G_kwarg_warns_and_applies(self):
        tasks, _ = self.make()
        with pytest.deprecated_call(match="group_size"):
            legacy = get_executor("CORO").run(
                tasks, ExecutionEngine(ARCH), G=4
            )
        tasks2, _ = self.make()
        modern = get_executor("CORO").run(
            tasks2, ExecutionEngine(ARCH), group_size=4
        )
        assert list(legacy) == list(modern)

    def test_conflicting_spellings_rejected(self):
        tasks, _ = self.make()
        with pytest.raises(SchedulerError, match="group_size"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                get_executor("CORO").run(
                    tasks, ExecutionEngine(ARCH), group_size=4, G=8
                )

    def test_unknown_kwarg_rejected(self):
        tasks, _ = self.make()
        with pytest.raises(SchedulerError, match="unknown executor kwargs"):
            get_executor("CORO").run(tasks, ExecutionEngine(ARCH), gruop_size=4)


class TestCliExitCodes:
    """The documented contract: 0 success, 1 runtime, 2 usage."""

    def test_usage_errors_exit_2(self, capsys):
        assert main(["serve", "nope"]) == 2
        assert main(["serve", "quick", "--faults", "gremlins"]) == 2
        assert main(["table99"]) == 2
        capsys.readouterr()

    def test_runtime_errors_exit_1(self, capsys, monkeypatch):
        import repro.service.loadgen as loadgen

        def boom(*args, **kwargs):
            raise ConfigurationError("shard meltdown")

        monkeypatch.setattr(loadgen, "run_scenario", boom)
        assert main(["serve", "quick"]) == 1
        assert "shard meltdown" in capsys.readouterr().err

    def test_serve_json_validates_against_the_bench_schema(self, capsys):
        assert main(["serve", "quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert check_bench_schema.check_service_document(doc) == []

    def test_serve_chaos_json_validates_against_the_chaos_schema(self, capsys):
        assert main(["serve", "chaos-quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == check_bench_schema.CHAOS_SCHEMA
        assert check_bench_schema.check_service_document(doc, chaos=True) == []

    def test_experiment_json_documents_are_well_formed(self, capsys):
        assert main(["table5", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) >= {"experiment", "headers", "kind", "rows", "title"}
        assert all(len(row) == len(doc["headers"]) for row in doc["rows"])

    def test_list_shows_fault_profiles(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fault profiles" in out
        assert "chaos-quick" in out
        assert "group_size=" in out


class TestRunPlan:
    """api.run_plan: the plan facade over a caller-supplied column."""

    @pytest.fixture(scope="class")
    def column(self):
        import numpy as np

        from repro.columnstore import EncodedColumn

        return EncodedColumn.from_values(
            AddressSpaceAllocator(), "api-plan/col", np.arange(5_000)
        )

    def test_run_plan_reports_operators_and_matches(self, column):
        result = api.run_plan(column, [10, 20, 30], strategy="interleaved")
        assert result.strategy == "interleaved"
        assert result.n_matches == 3
        labels = {op.label for op in result.operators}
        assert {"in_predicate_encode", "scan", "aggregate"} <= labels
        assert result.total_cycles == sum(op.cycles for op in result.operators)
        assert result.operator("scan").operator == "scan"
        rendered = result.render()
        assert "in_predicate_encode" in rendered
        assert "interleaved" in rendered

    def test_unknown_operator_label_raises(self, column):
        from repro.errors import QueryError

        result = api.run_plan(column, [1], strategy="sequential")
        with pytest.raises(QueryError):
            result.operator("nope")

    def test_plan_matches_run_in_predicate_bit_for_bit(self, column):
        from repro.sim.engine import ExecutionEngine as Engine

        values = [5, 4_999, 12_345]
        legacy = repro.run_in_predicate(
            Engine(ARCH), column, values, strategy="sequential"
        )
        plan = api.run_plan(
            column, values, strategy="sequential", arch=ARCH
        )
        assert plan.total_cycles == legacy.total_cycles
        assert sorted(plan.rows) == sorted(int(r) for r in legacy.rows)


class TestCliPlanVerb:
    def test_plan_renders_tree_and_profiles(self, capsys):
        assert main(["plan", "--dict-bytes", "1048576", "--predicates", "50"]) == 0
        out = capsys.readouterr().out
        assert "aggregate" in out
        assert "index join" in out or "in_predicate_encode" in out

    def test_plan_json_validates_against_the_query_schema(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--json",
                    "--dict-bytes",
                    "1048576",
                    "--predicates",
                    "50",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == check_bench_schema.QUERY_SCHEMA
        assert doc["kind"] == "plan_run"
        assert check_bench_schema.check_query_document(doc) == []

    def test_plan_usage_errors_exit_2(self, capsys):
        assert main(["plan", "--strategy", "bogus"]) == 2
        # argparse rejects bad --store choices itself, exiting with the
        # same usage status.
        with pytest.raises(SystemExit) as excinfo:
            main(["plan", "--store", "basalt"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_list_shows_query_operators(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "query operators" in out
        assert "index_join" in out
