"""Tests for the ``repro.scenario/1`` declarative spec surface.

The two load-bearing invariants:

* **byte round-trip** — every registry scenario serialises through
  ``ScenarioSpec`` and back without changing a byte, which is what lets
  every serving entry point route through the spec surface with zero
  output drift;
* **strict validation** — unknown keys and out-of-range values raise
  :class:`SpecError` carrying the offending field's dotted path, never
  a silently-defaulted run.
"""

import json
import pathlib
import warnings

import pytest

from repro import api
from repro.cluster.scenarios import ClusterScenario
from repro.errors import SpecError, WorkloadError
from repro.scenario import (
    ScenarioSpec,
    load_spec_file,
    parse_spec_text,
    resolve_scenario,
    resolve_spec,
)
from repro.service.loadgen import run_slo_scenario
from repro.service.scenarios import SCENARIO_REGISTRY, Scenario, get_scenario

try:
    import yaml
except ImportError:  # pragma: no cover - pyyaml is in the test image
    yaml = None

REPO = pathlib.Path(__file__).parent.parent.parent
SHIPPED = sorted((REPO / "scenarios").glob("*.*"))


def _all_registry_scenarios():
    return list(SCENARIO_REGISTRY.values())


class TestRegistryRoundTrip:
    @pytest.mark.parametrize(
        "scenario", _all_registry_scenarios(), ids=lambda s: s.name
    )
    def test_byte_identical_dict_round_trip(self, scenario):
        spec = ScenarioSpec.from_scenario(scenario)
        first = json.dumps(spec.to_dict(), sort_keys=True)
        second = json.dumps(
            ScenarioSpec.from_dict(spec.to_dict()).to_dict(), sort_keys=True
        )
        assert first == second

    @pytest.mark.parametrize(
        "scenario", _all_registry_scenarios(), ids=lambda s: s.name
    )
    def test_reconstructs_an_equal_scenario(self, scenario):
        rebuilt = ScenarioSpec.from_scenario(scenario).to_scenario()
        assert type(rebuilt) is type(scenario)
        assert rebuilt == scenario

    def test_resolve_by_name_equals_registry_entry(self):
        assert resolve_scenario("quick") == get_scenario("quick")

    def test_cluster_spec_kind(self):
        spec = ScenarioSpec.from_scenario(get_scenario("planet-quick"))
        assert spec.kind == "cluster"
        assert "interconnect" in spec.to_dict()
        assert isinstance(spec.to_scenario(), ClusterScenario)

    def test_service_spec_omits_cluster_keys(self):
        record = ScenarioSpec.from_scenario(get_scenario("quick")).to_dict()
        assert "interconnect" not in record
        assert "n_users" not in record


class TestStrictValidation:
    def _minimal(self, **overrides):
        record = {"schema": "repro.scenario/1", "name": "t"}
        record.update(overrides)
        return record

    def test_missing_schema_tag(self):
        with pytest.raises(SpecError, match="schema"):
            ScenarioSpec.from_dict({"name": "t"})

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="wat: unknown field"):
            ScenarioSpec.from_dict(self._minimal(wat=1))

    def test_unknown_config_field_has_dotted_path(self):
        with pytest.raises(SpecError, match=r"config\.max_bacth"):
            ScenarioSpec.from_dict(
                self._minimal(config={"max_bacth": 16})
            )

    def test_cluster_config_field_hint_on_service_kind(self):
        with pytest.raises(SpecError, match="cluster-config field"):
            ScenarioSpec.from_dict(self._minimal(config={"n_nodes": 4}))

    def test_out_of_range_controller_value_has_path(self):
        with pytest.raises(
            SpecError, match=r"config\.controller: controller window"
        ):
            ScenarioSpec.from_dict(
                self._minimal(config={"controller": {"window_cycles": 0}})
            )

    def test_wrongly_typed_config_value(self):
        with pytest.raises(SpecError, match=r"config\.max_batch"):
            ScenarioSpec.from_dict(self._minimal(config={"max_batch": "big"}))

    def test_boolean_is_not_an_int(self):
        with pytest.raises(SpecError, match=r"config\.max_batch"):
            ScenarioSpec.from_dict(self._minimal(config={"max_batch": True}))

    def test_unknown_controller_field_has_path(self):
        with pytest.raises(SpecError, match=r"config\.controller\.window"):
            ScenarioSpec.from_dict(
                self._minimal(config={"controller": {"window": 1}})
            )

    def test_unknown_controller_technique_has_indexed_path(self):
        with pytest.raises(
            SpecError, match=r"config\.controller\.techniques\[1\]"
        ):
            ScenarioSpec.from_dict(
                self._minimal(
                    config={
                        "controller": {"techniques": ["CORO", "warpdrive"]}
                    }
                )
            )

    def test_cluster_only_keys_rejected_for_service_kind(self):
        with pytest.raises(SpecError, match="interconnect"):
            ScenarioSpec.from_dict(self._minimal(interconnect="planet"))

    def test_unknown_arrival_kind(self):
        with pytest.raises(SpecError, match="arrival"):
            ScenarioSpec.from_dict(self._minimal(arrival={"kind": "uniform"}))

    def test_unknown_fault_profile(self):
        with pytest.raises(SpecError, match="fault_profile"):
            ScenarioSpec.from_dict(self._minimal(fault_profile="gremlins"))

    def test_unknown_technique(self):
        with pytest.raises(SpecError, match="techniques"):
            ScenarioSpec.from_dict(self._minimal(techniques=["warpdrive"]))


class TestParsing:
    def test_json_text(self):
        spec = parse_spec_text(
            json.dumps({"schema": "repro.scenario/1", "name": "t"})
        )
        assert spec.name == "t"

    def test_forced_json_rejects_yaml(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            parse_spec_text("name: t", format="json")

    @pytest.mark.skipif(yaml is None, reason="pyyaml not installed")
    def test_yaml_text(self):
        spec = parse_spec_text(
            "schema: repro.scenario/1\nname: t\nloads: [0.5]\n"
        )
        assert spec.loads == (0.5,)

    def test_parse_error_carries_source_and_path_once(self):
        with pytest.raises(SpecError) as exc_info:
            parse_spec_text(
                json.dumps(
                    {
                        "schema": "repro.scenario/1",
                        "name": "t",
                        "config": {"max_bacth": 1},
                    }
                ),
                source="my.json",
            )
        message = str(exc_info.value)
        assert message.count("config.max_bacth") == 1
        assert message.startswith("my.json:")

    def test_load_spec_file_missing(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec_file(tmp_path / "absent.yaml")

    def test_file_ref_resolution(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"schema": "repro.scenario/1", "name": "from-file"})
        )
        assert resolve_scenario(f"file:{path}").name == "from-file"

    def test_resolve_spec_rejects_garbage(self):
        with pytest.raises(SpecError, match="reference"):
            resolve_spec(42)


class TestShippedSpecs:
    def test_the_catalogue_is_populated(self):
        assert len(SHIPPED) >= 8

    @pytest.mark.parametrize("path", SHIPPED, ids=lambda p: p.name)
    def test_every_shipped_spec_parses(self, path):
        if path.suffix in (".yaml", ".yml") and yaml is None:
            pytest.skip("pyyaml not installed")
        spec = load_spec_file(path)
        assert spec.name

    @pytest.mark.parametrize(
        "filename, registered",
        [
            ("controller-quick.yaml", "controller-quick"),
            ("phase-shift.json", "phase-shift"),
        ],
    )
    def test_registry_mirrors_resolve_equal(self, filename, registered):
        """The shipped twins of registry scenarios cannot drift."""
        if filename.endswith(".yaml") and yaml is None:
            pytest.skip("pyyaml not installed")
        resolved = resolve_scenario(f"file:{REPO / 'scenarios' / filename}")
        assert resolved == get_scenario(registered)


class TestDeprecatedScenarioKeyword:
    def test_run_slo_scenario_requires_a_reference(self):
        with pytest.raises(WorkloadError, match="needs a scenario"):
            run_slo_scenario()

    def test_both_spec_and_scenario_rejected(self):
        with pytest.raises(WorkloadError, match="deprecated"):
            run_slo_scenario("quick", scenario="quick")

    def test_api_serve_scenario_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="serve"):
            result = api.serve(scenario="quick")
        assert result.doc["scenario"] == "quick"

    def test_run_slo_scenario_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="run_slo_scenario"):
            doc = run_slo_scenario(scenario="chaos-quick")
        assert doc["schema"] == "repro.slo/1"

    def test_positional_reference_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.serve("quick")


class TestSubclassPassThrough:
    def test_unknown_scenario_subclass_is_not_flattened(self):
        class Custom(Scenario):
            pass

        custom = Custom(name="custom", description="", loads=(0.5,))
        assert resolve_scenario(custom) is custom
