"""CLI coverage for the spec surface: ``list``/``serve``/``explain``
accepting ``file:`` references, ``list --json`` emitting serialized
specs, and malformed specs exiting 2 with the offending field path on
stderr.
"""

import json

import pytest

from repro.__main__ import main
from repro.scenario import ScenarioSpec
from repro.service.scenarios import SCENARIO_REGISTRY, get_scenario


@pytest.fixture()
def quick_spec_file(tmp_path):
    path = tmp_path / "quick.json"
    spec = ScenarioSpec.from_scenario(get_scenario("quick"))
    path.write_text(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return path


@pytest.fixture()
def malformed_spec_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(
        json.dumps(
            {
                "schema": "repro.scenario/1",
                "name": "bad",
                "config": {"max_bacth": 16},
            }
        )
    )
    return path


class TestListJson:
    def test_emits_every_registered_scenario_as_its_spec(self, capsys):
        assert main(["list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.list/1"
        by_name = {record["name"]: record for record in doc["scenarios"]}
        assert set(by_name) == set(SCENARIO_REGISTRY)
        for name, scenario in SCENARIO_REGISTRY.items():
            expected = ScenarioSpec.from_scenario(scenario).to_dict()
            assert by_name[name] == expected

    def test_registry_name_ref_prints_its_spec(self, capsys):
        assert main(["list", "quick"]) == 0
        record = json.loads(capsys.readouterr().out)
        expected = ScenarioSpec.from_scenario(get_scenario("quick")).to_dict()
        assert record == expected

    def test_file_ref_resolves(self, capsys, quick_spec_file):
        assert main(["list", f"file:{quick_spec_file}", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.list/1"
        assert doc["scenarios"][0]["name"] == "quick"

    def test_malformed_file_exits_2_with_field_path(
        self, capsys, malformed_spec_file
    ):
        assert main(["list", f"file:{malformed_spec_file}"]) == 2
        stderr = capsys.readouterr().err
        assert "config.max_bacth" in stderr

    def test_unknown_name_exits_2(self, capsys):
        assert main(["list", "no-such-scenario"]) == 2


class TestServeFileRefs:
    def test_serve_accepts_a_file_spec(self, capsys, quick_spec_file):
        assert (
            main(
                [
                    "serve",
                    f"file:{quick_spec_file}",
                    "--json",
                    "--seed",
                    "0",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.service/1"
        assert doc["scenario"] == "quick"

    def test_serve_rejects_a_malformed_spec(self, capsys, malformed_spec_file):
        assert main(["serve", f"file:{malformed_spec_file}"]) == 2
        assert "config.max_bacth" in capsys.readouterr().err

    def test_serve_rejects_a_missing_file(self, capsys, tmp_path):
        assert main(["serve", f"file:{tmp_path / 'absent.yaml'}"]) == 2


class TestExplainFileRefs:
    def test_explain_accepts_a_file_spec(self, capsys, quick_spec_file):
        assert (
            main(
                [
                    "explain",
                    f"file:{quick_spec_file}",
                    "--json",
                    "--seed",
                    "0",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.explain/1"
        assert doc["scenario"] == "quick"

    def test_explain_rejects_a_malformed_spec(
        self, capsys, malformed_spec_file
    ):
        assert main(["explain", f"file:{malformed_spec_file}"]) == 2
        assert "config.max_bacth" in capsys.readouterr().err
