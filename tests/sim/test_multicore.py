"""Tests for the multi-core simulation (shared LLC)."""

import numpy as np
import pytest

from repro.config import HASWELL
from repro.errors import ConfigurationError
from repro.indexes.binary_search import binary_search_baseline, binary_search_coro
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving import run_interleaved, run_sequential
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.multicore import MultiCoreSystem


def make_workload(nbytes=64 << 20, n=240):
    alloc = AddressSpaceAllocator()
    table = int_array_of_bytes(alloc, "arr", nbytes)
    rng = np.random.RandomState(0)
    probes = [int(v) for v in rng.randint(0, table.size, n)]
    return table, probes


class TestTopology:
    def test_l3_is_shared(self):
        system = MultiCoreSystem(4)
        assert all(m.l3 is system.shared_l3 for m in system.memories)

    def test_l1_l2_private(self):
        system = MultiCoreSystem(2)
        a, b = system.memories
        assert a.l1 is not b.l1
        assert a.l2 is not b.l2
        assert a.tlb is not b.tlb

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiCoreSystem(0)

    def test_cross_core_llc_hits(self):
        system = MultiCoreSystem(2)
        first = system.memories[0].load_line(42, 0)
        system.memories[0].lfbs.drain(first.ready)
        # Core 1's private L1/L2 miss, but the shared L3 has the line.
        outcome = system.memories[1].load_line(42, 0)
        assert outcome.level == "L3"


class TestRun:
    def test_results_round_robin_reassembly(self):
        table, probes = make_workload(1 << 20, n=50)
        system = MultiCoreSystem(3)
        result = system.run(
            lambda engine, shard: run_sequential(
                engine, lambda v, il: binary_search_baseline(table, v), shard
            ),
            probes,
        )
        assert result.total_items == 50
        assert result.results_in_order() == probes  # value == index array

    def test_makespan_is_slowest_core(self):
        table, probes = make_workload(1 << 20, n=30)
        system = MultiCoreSystem(4)
        result = system.run(
            lambda engine, shard: run_sequential(
                engine, lambda v, il: binary_search_baseline(table, v), shard
            ),
            probes,
        )
        assert result.makespan == max(core.cycles for core in result.cores)
        assert result.throughput > 0

    def test_more_cores_more_throughput(self):
        table, probes = make_workload(64 << 20, n=160)
        throughput = {}
        for n_cores in (1, 4):
            system = MultiCoreSystem(n_cores)
            result = system.run(
                lambda engine, shard: run_sequential(
                    engine, lambda v, il: binary_search_baseline(table, v), shard
                ),
                probes,
            )
            throughput[n_cores] = result.throughput
        assert throughput[4] > 2.5 * throughput[1]

    def test_interleaving_helps_every_core(self):
        """Section 3: ISI reduces cycles in multi-threaded execution too."""
        table, probes = make_workload(64 << 20, n=160)

        def measure(runner):
            system = MultiCoreSystem(4)
            return system.run(runner, probes).makespan

        sequential = measure(
            lambda engine, shard: run_sequential(
                engine, lambda v, il: binary_search_baseline(table, v), shard
            )
        )
        interleaved = measure(
            lambda engine, shard: run_interleaved(
                engine, lambda v, il: binary_search_coro(table, v, il), shard, 6
            )
        )
        assert interleaved < sequential

    def test_empty_items(self):
        system = MultiCoreSystem(2)
        result = system.run(lambda engine, shard: [], [])
        assert result.total_items == 0
        assert result.throughput == 0.0

    def test_remote_dram_knob(self):
        system = MultiCoreSystem(2, extra_dram_latency=100)
        outcome = system.memories[0].load_line(7, 0)
        assert outcome.ready == HASWELL.dram_latency + 100


class TestRunBulk:
    def test_run_bulk_matches_run(self):
        from repro.interleaving import BulkLookup

        table, probes = make_workload(64 << 20, n=120)
        system = MultiCoreSystem(3)
        by_name = system.run_bulk(
            "CORO", BulkLookup.sorted_array(table, probes), group_size=6
        )
        system2 = MultiCoreSystem(3)
        by_runner = system2.run(
            lambda engine, shard: run_interleaved(
                engine, lambda v, il: binary_search_coro(table, v, il), shard, 6
            ),
            probes,
        )
        assert by_name.results_in_order() == by_runner.results_in_order()
        assert by_name.makespan == by_runner.makespan

    def test_run_bulk_batches_through_pipeline(self):
        from repro.interleaving import BulkLookup

        table, probes = make_workload(64 << 20, n=90)
        system = MultiCoreSystem(2)
        batched = system.run_bulk(
            "CORO",
            BulkLookup.sorted_array(table, probes),
            group_size=6,
            batch_size=16,
        )
        system2 = MultiCoreSystem(2)
        unbatched = system2.run_bulk(
            "CORO", BulkLookup.sorted_array(table, probes), group_size=6
        )
        assert batched.results_in_order() == unbatched.results_in_order()

    def test_run_bulk_empty(self):
        from repro.interleaving import BulkLookup

        table, _ = make_workload(1 << 20, n=4)
        system = MultiCoreSystem(8)
        result = system.run_bulk("sequential", BulkLookup.sorted_array(table, []))
        assert result.total_items == 0
