"""Tests for the event vocabulary itself."""

import dataclasses

import pytest

from repro.sim.events import (
    SUSPEND,
    Compute,
    Event,
    FrameAlloc,
    Load,
    Prefetch,
    Store,
    Suspend,
)


class TestEventTypes:
    def test_all_are_events(self):
        for event in (
            Compute(1, 1),
            Load(0, 8),
            Store(0, 8),
            Prefetch(0),
            Suspend(),
            FrameAlloc(),
        ):
            assert isinstance(event, Event)

    def test_frozen(self):
        event = Load(64, 8)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.addr = 128

    def test_slots_refuse_new_attributes(self):
        event = Compute(1, 1)
        with pytest.raises((AttributeError, TypeError)):
            event.extra = 1

    def test_defaults(self):
        assert Load(0).size == 8
        assert Load(0).spec_next is None
        assert Store(0).size == 8
        assert Prefetch(0).size == 64
        assert Prefetch(0).nta is True

    def test_suspend_singleton_is_a_suspend(self):
        assert isinstance(SUSPEND, Suspend)
        assert SUSPEND == Suspend()

    def test_equality_by_value(self):
        assert Load(64, 8) == Load(64, 8)
        assert Load(64, 8) != Load(64, 4)
        assert Compute(2, 3) == Compute(2, 3)

    def test_spec_next_carries_both_branches(self):
        event = Load(0, 8, spec_next=(100, 200))
        assert event.spec_next == (100, 200)

    def test_hashable(self):
        assert len({Load(0, 8), Load(0, 8), Load(1, 8)}) == 2
