"""Unit tests for the TLB hierarchy and page walker."""

from repro.config import HASWELL, CostModel, TlbSpec
from repro.sim.allocator import PAGE_TABLE_BASE
from repro.sim.tlb import PTE_SIZE, LruArray, Tlb


def make_tlb(dtlb_entries=4, stlb_entries=16, pte_latency=38, pte_level="L3"):
    probes = []

    def pte_probe(addr, now):
        probes.append((addr, now))
        return pte_latency, pte_level

    tlb = Tlb(
        TlbSpec("DTLB", dtlb_entries, 2, 0),
        TlbSpec("STLB", stlb_entries, 4, 7),
        page_size=4096,
        cost=CostModel(),
        pte_probe=pte_probe,
    )
    return tlb, probes


class TestLruArray:
    def test_hit_and_install(self):
        arr = LruArray(4, 2)
        assert not arr.lookup(1)
        arr.install(1)
        assert arr.lookup(1)

    def test_eviction(self):
        arr = LruArray(2, 2)  # one set, two ways
        arr.install(0)
        arr.install(2)
        arr.install(4)  # evicts 0 (LRU)
        assert not arr.lookup(0)
        assert arr.lookup(2) and arr.lookup(4)

    def test_flush(self):
        arr = LruArray(4, 2)
        arr.install(1)
        arr.flush()
        assert not arr.lookup(1)


class TestTranslate:
    def test_first_access_walks(self):
        tlb, probes = make_tlb()
        result = tlb.translate(0x1000, now=0)
        assert result.level == "PW-L3"
        assert result.walked
        assert result.cycles == CostModel().page_walk_base_cycles + 38
        assert len(probes) == 1
        assert tlb.stats.walks == 1

    def test_second_access_hits_dtlb_free(self):
        tlb, _ = make_tlb()
        tlb.translate(0x1000, 0)
        result = tlb.translate(0x1FFF, 100)  # same 4 KB page
        assert result.level == "DTLB"
        assert result.cycles == 0
        assert tlb.stats.dtlb_hits == 1

    def test_dtlb_eviction_falls_back_to_stlb(self):
        tlb, _ = make_tlb(dtlb_entries=2, stlb_entries=16)
        # Pages 0, 2, 4 map to DTLB set 0 (2 sets... entries=2, assoc=2 -> 1 set).
        for page in (0, 1, 2):
            tlb.translate(page * 4096, 0)
        result = tlb.translate(0, 50)  # page 0 evicted from DTLB, still in STLB
        assert result.level == "STLB"
        assert result.cycles == 7

    def test_page_walk_after_stlb_eviction(self):
        tlb, probes = make_tlb(dtlb_entries=2, stlb_entries=4)
        for page in range(8):
            tlb.translate(page * 4096, 0)
        walks_before = tlb.stats.walks
        tlb.translate(0, 0)
        assert tlb.stats.walks == walks_before + 1

    def test_pte_address_layout(self):
        tlb, probes = make_tlb()
        tlb.translate(5 * 4096, 0)
        assert probes[0][0] == PAGE_TABLE_BASE + 5 * PTE_SIZE

    def test_pte_probe_sees_walk_base_delay(self):
        tlb, probes = make_tlb()
        tlb.translate(0, now=1000)
        assert probes[0][1] == 1000 + CostModel().page_walk_base_cycles

    def test_walk_levels_recorded(self):
        tlb, _ = make_tlb(pte_level="DRAM", pte_latency=182)
        tlb.translate(0, 0)
        assert tlb.stats.walks_by_level == {"PW-DRAM": 1}

    def test_flush_forces_rewalk(self):
        tlb, _ = make_tlb()
        tlb.translate(0, 0)
        tlb.flush()
        result = tlb.translate(0, 0)
        assert result.walked
        assert tlb.stats.walks == 2

    def test_stlb_span_matches_paper(self):
        """1024 STLB entries x 4 KB pages = 4 MB coverage (Section 5.4.3)."""
        assert HASWELL.stlb.entries * HASWELL.page_size == 4 * 1024 * 1024
