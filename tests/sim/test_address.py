"""Unit tests for address arithmetic and regions."""

import pytest

from repro.errors import AddressError
from repro.sim.address import (
    Region,
    line_base,
    line_number,
    lines_touched,
    page_number,
)


class TestLineMath:
    def test_line_number_basic(self):
        assert line_number(0, 64) == 0
        assert line_number(63, 64) == 0
        assert line_number(64, 64) == 1
        assert line_number(6400, 64) == 100

    def test_line_base(self):
        assert line_base(0, 64) == 0
        assert line_base(63, 64) == 0
        assert line_base(130, 64) == 128

    def test_page_number(self):
        assert page_number(0, 4096) == 0
        assert page_number(4095, 4096) == 0
        assert page_number(4096, 4096) == 1

    def test_lines_touched_single(self):
        assert lines_touched(0, 8, 64) == [0]
        assert lines_touched(56, 8, 64) == [0]

    def test_lines_touched_crossing(self):
        assert lines_touched(60, 8, 64) == [0, 1]
        assert lines_touched(0, 129, 64) == [0, 1, 2]

    def test_lines_touched_exact_line(self):
        assert lines_touched(64, 64, 64) == [1]

    def test_lines_touched_rejects_nonpositive_size(self):
        with pytest.raises(AddressError):
            lines_touched(0, 0, 64)
        with pytest.raises(AddressError):
            lines_touched(0, -8, 64)


class TestRegion:
    def test_contains_and_end(self):
        region = Region("r", 1000, 100)
        assert region.end == 1100
        assert 1000 in region
        assert 1099 in region
        assert 1100 not in region
        assert 999 not in region

    def test_at_offsets(self):
        region = Region("r", 4096, 64)
        assert region.at(0) == 4096
        assert region.at(63) == 4159

    def test_at_out_of_bounds(self):
        region = Region("r", 4096, 64)
        with pytest.raises(AddressError):
            region.at(64)
        with pytest.raises(AddressError):
            region.at(-1)

    def test_negative_base_rejected(self):
        with pytest.raises(AddressError):
            Region("bad", -1, 10)

    def test_overlaps(self):
        a = Region("a", 0, 100)
        b = Region("b", 50, 100)
        c = Region("c", 100, 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
        assert not c.overlaps(a)
