"""Unit tests for the simulated address-space allocator."""

import pytest

from repro.errors import AllocationError
from repro.sim.allocator import PAGE_TABLE_BASE, AddressSpaceAllocator


class TestAllocation:
    def test_regions_are_disjoint(self):
        alloc = AddressSpaceAllocator()
        regions = [alloc.allocate(f"r{i}", 1000 + i) for i in range(10)]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)

    def test_page_alignment_default(self):
        alloc = AddressSpaceAllocator(page_size=4096)
        r1 = alloc.allocate("a", 5)
        r2 = alloc.allocate("b", 5)
        assert r1.base % 4096 == 0
        assert r2.base % 4096 == 0
        assert r2.base >= r1.end

    def test_custom_alignment(self):
        alloc = AddressSpaceAllocator()
        region = alloc.allocate("aligned", 100, alignment=1 << 20)
        assert region.base % (1 << 20) == 0

    def test_bad_alignment_rejected(self):
        alloc = AddressSpaceAllocator()
        with pytest.raises(AllocationError):
            alloc.allocate("x", 10, alignment=3)

    def test_duplicate_name_rejected(self):
        alloc = AddressSpaceAllocator()
        alloc.allocate("dup", 10)
        with pytest.raises(AllocationError):
            alloc.allocate("dup", 10)

    def test_nonpositive_size_rejected(self):
        alloc = AddressSpaceAllocator()
        with pytest.raises(AllocationError):
            alloc.allocate("zero", 0)

    def test_free_allows_name_reuse_without_address_reuse(self):
        alloc = AddressSpaceAllocator()
        first = alloc.allocate("tmp", 4096)
        alloc.free("tmp")
        second = alloc.allocate("tmp", 4096)
        assert second.base >= first.end

    def test_free_unknown_name(self):
        alloc = AddressSpaceAllocator()
        with pytest.raises(AllocationError):
            alloc.free("never")

    def test_region_of(self):
        alloc = AddressSpaceAllocator()
        region = alloc.allocate("data", 8192)
        assert alloc.region_of(region.base + 100) is region
        assert alloc.region_of(region.end + 10_000_000) is None

    def test_never_reaches_page_table_region(self):
        alloc = AddressSpaceAllocator()
        region = alloc.allocate("big", 1 << 40)
        assert region.end < PAGE_TABLE_BASE
        with pytest.raises(AllocationError):
            alloc.allocate("too-big", PAGE_TABLE_BASE)
