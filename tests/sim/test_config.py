"""Tests for architecture specifications and scaling."""

import dataclasses

import pytest

from repro.config import HASWELL, ArchSpec, CacheSpec, CostModel, TlbSpec, scaled
from repro.errors import ConfigurationError


class TestHaswellDefaults:
    def test_paper_parameters(self):
        """Table 4 of the paper."""
        assert HASWELL.l1d.size == 32 * 1024 and HASWELL.l1d.associativity == 8
        assert HASWELL.l2.size == 256 * 1024 and HASWELL.l2.associativity == 8
        assert HASWELL.l3.size == 25 * 1024 * 1024
        assert HASWELL.n_line_fill_buffers == 10
        assert HASWELL.dtlb.entries == 64 and HASWELL.dtlb.associativity == 4
        assert HASWELL.stlb.entries == 1024 and HASWELL.stlb.associativity == 8
        assert HASWELL.dram_latency == 182  # cycles, from the paper
        assert HASWELL.cost.issue_width == 4  # 4-wide OoO

    def test_cycles_to_ms(self):
        assert HASWELL.cycles_to_ms(2.6e6) == pytest.approx(1.0)

    def test_replace(self):
        faster = HASWELL.replace(frequency_ghz=3.0)
        assert faster.frequency_ghz == 3.0
        assert HASWELL.frequency_ghz == 2.6


class TestValidation:
    def test_bad_line_size(self):
        with pytest.raises(ConfigurationError):
            ArchSpec(line_size=48)

    def test_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            ArchSpec(page_size=1000)

    def test_no_lfbs(self):
        with pytest.raises(ConfigurationError):
            ArchSpec(n_line_fill_buffers=0)

    def test_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            ArchSpec(frequency_ghz=0)

    def test_cache_geometry_checked_eagerly(self):
        with pytest.raises(ConfigurationError):
            ArchSpec(l1d=CacheSpec("L1D", 100, 8, 4))

    def test_tlb_validation(self):
        with pytest.raises(ConfigurationError):
            TlbSpec("T", 0, 1, 0)
        with pytest.raises(ConfigurationError):
            TlbSpec("T", 10, 4, 0)  # not a multiple of associativity

    def test_negative_cache_latency(self):
        with pytest.raises(ConfigurationError):
            CacheSpec("X", 1024, 2, -1)


class TestScaled:
    def test_capacities_shrink_latencies_stay(self):
        spec = scaled(8)
        assert spec.l1d.size == HASWELL.l1d.size // 8
        assert spec.l3.size == HASWELL.l3.size // 8
        assert spec.l1d.latency == HASWELL.l1d.latency
        assert spec.dram_latency == HASWELL.dram_latency
        assert spec.cost == HASWELL.cost

    def test_tlbs_shrink_with_floor(self):
        spec = scaled(64)
        assert spec.dtlb.entries == max(4, 64 // 64)
        assert spec.stlb.entries == 1024 // 64

    def test_name(self):
        assert "64x" in scaled(64).name
        assert scaled(2, name="tiny").name == "tiny"

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            scaled(0)
        with pytest.raises(ConfigurationError):
            scaled(10_000)  # shrinks L1 below one set

    def test_calibration_ratios_preserved(self):
        """Instruction-overhead ratios match the paper (Section 5.4.4)."""
        cost = CostModel()
        base = cost.search_iter_instructions
        gp_total = base + cost.gp_switch[1]
        amac_total = base + cost.amac_switch[1]
        coro_total = base + cost.coro_switch[1]
        assert gp_total / base == pytest.approx(1.8, abs=0.2)
        assert amac_total / base == pytest.approx(4.4, abs=0.3)
        assert coro_total / base == pytest.approx(5.4, abs=0.3)
        assert coro_total > amac_total  # CORO executes the most instructions
        assert cost.coro_switch[0] < cost.amac_switch[0]  # ...in fewer cycles
