"""Tests for the event-trace utilities."""

from repro.sim.events import SUSPEND, Compute, Load, Prefetch
from repro.sim.trace import TraceRecorder, loads_of, prefetches_of, record_events


def sample_stream():
    yield Compute(1, 1)
    yield Prefetch(64)
    yield Load(64, 8)
    yield Load(128, 8)
    return "finished"


class TestRecordEvents:
    def test_collects_all_events_and_result(self):
        events, result = record_events(sample_stream())
        assert result == "finished"
        assert len(events) == 4

    def test_loads_and_prefetches_extractors(self):
        events, _ = record_events(sample_stream())
        assert loads_of(events) == [64, 128]
        assert prefetches_of(events) == [64]


class TestTraceRecorder:
    def test_iterates_transparently(self):
        recorder = TraceRecorder(sample_stream())
        seen = list(recorder)
        assert len(seen) == 4
        assert recorder.finished
        assert recorder.result == "finished"

    def test_send_passthrough(self):
        def echo_stream():
            got = yield Compute(1, 1)
            yield Load(got, 8)
            return got

        recorder = TraceRecorder(echo_stream())
        first = next(recorder)
        assert isinstance(first, Compute)
        second = recorder.send(640)
        assert isinstance(second, Load) and second.addr == 640
        try:
            recorder.send(None)
        except StopIteration:
            pass
        assert recorder.result == 640

    def test_close(self):
        recorder = TraceRecorder(sample_stream())
        next(recorder)
        recorder.close()  # no error; underlying generator closed
        assert recorder.finished

    def test_throw_passthrough(self):
        def stream():
            try:
                yield Compute(1, 1)
            except ValueError:
                yield Load(64, 8)
                return "recovered"

        recorder = TraceRecorder(stream())
        next(recorder)
        event = recorder.throw(ValueError)
        assert isinstance(event, Load) and event.addr == 64
        assert [type(e).__name__ for e in recorder.events] == ["Compute", "Load"]
        try:
            recorder.send(None)
        except StopIteration:
            pass
        assert recorder.result == "recovered" and recorder.finished

    def test_suspension_events_recorded(self):
        def stream():
            yield SUSPEND
            return None

        events, _ = record_events(stream())
        assert events == [SUSPEND]
