"""Tests for prefetch outcomes (the Section 6 'is it cached?' answer)."""

from repro.config import HASWELL
from repro.sim import ExecutionEngine, Prefetch, StreamContext

BASE = 1 << 22


def make_engine():
    return ExecutionEngine(HASWELL)


class TestPrefetchOutcome:
    def test_cold_line_reports_uncached(self):
        engine = make_engine()
        assert engine.execute_prefetch(Prefetch(BASE, 8)) is False

    def test_resident_line_reports_cached(self):
        engine = make_engine()
        engine.memory.warm_lines([BASE // 64])
        assert engine.execute_prefetch(Prefetch(BASE, 8)) is True

    def test_in_flight_line_reports_cached(self):
        engine = make_engine()
        engine.execute_prefetch(Prefetch(BASE, 8))
        # A second prefetch while the fill is in flight: already covered.
        assert engine.execute_prefetch(Prefetch(BASE, 8)) is True

    def test_multi_line_any_miss_reports_uncached(self):
        engine = make_engine()
        engine.memory.warm_lines([BASE // 64])  # first line only
        assert engine.execute_prefetch(Prefetch(BASE, 256)) is False

    def test_outcome_flows_into_generator(self):
        engine = make_engine()
        engine.memory.warm_lines([BASE // 64])
        seen = []

        def stream():
            cached = yield Prefetch(BASE, 8)
            seen.append(cached)
            cached = yield Prefetch(BASE + (1 << 20), 8)
            seen.append(cached)
            return None

        engine.run(stream())
        assert seen == [True, False]

    def test_dispatch_returns_outcome(self):
        engine = make_engine()
        assert engine.dispatch(Prefetch(BASE, 8), StreamContext()) is False
