"""Unit tests for the memory-system facade."""

import pytest

from repro.config import HASWELL, scaled
from repro.errors import SimulationError
from repro.sim.memory import MemorySystem


@pytest.fixture
def mem():
    return MemorySystem(HASWELL)


LINE = HASWELL.line_size


class TestDemandLoads:
    def test_cold_load_goes_to_dram(self, mem):
        outcome = mem.load_line(100, now=0)
        assert outcome.level == "DRAM"
        assert outcome.ready == HASWELL.dram_latency
        assert mem.stats.loads_by_level["DRAM"] == 1

    def test_load_after_completion_hits_l1(self, mem):
        first = mem.load_line(100, 0)
        outcome = mem.load_line(100, first.ready + 1)
        assert outcome.level == "L1"
        assert outcome.ready == first.ready + 1 + HASWELL.l1d.latency

    def test_load_while_in_flight_is_lfb_hit(self, mem):
        first = mem.load_line(100, 0)
        outcome = mem.load_line(100, 50)
        assert outcome.level == "LFB"
        assert outcome.ready == first.ready

    def test_fill_installs_all_levels_on_demand(self, mem):
        first = mem.load_line(100, 0)
        mem.lfbs.drain(first.ready)
        assert mem.l1.contains(100)
        assert mem.l2.contains(100)
        assert mem.l3.contains(100)

    def test_l2_hit_latency(self, mem):
        first = mem.load_line(100, 0)
        mem.lfbs.drain(first.ready)
        # Evict from L1 only; the line remains in L2.
        mem.l1.invalidate(100)
        outcome = mem.load_line(100, 1000)
        assert outcome.level == "L2"
        assert outcome.ready == 1000 + HASWELL.l2.latency

    def test_l3_hit_latency(self, mem):
        first = mem.load_line(100, 0)
        mem.lfbs.drain(first.ready)
        mem.l1.invalidate(100)
        mem.l2.invalidate(100)
        outcome = mem.load_line(100, 1000)
        assert outcome.level == "L3"
        assert outcome.ready == 1000 + HASWELL.l3.latency

    def test_negative_cycle_rejected(self, mem):
        with pytest.raises(SimulationError):
            mem.load_line(1, -5)


class TestPrefetch:
    def test_nta_prefetch_bypasses_l2(self, mem):
        """Haswell PREFETCHNTA semantics: fill L1 and LLC, bypass L2."""
        mem.prefetch_line(100, 0, nta=True)
        mem.lfbs.drain(10_000)
        assert mem.l1.contains(100)
        assert not mem.l2.contains(100)
        assert mem.l3.contains(100)

    def test_nta_prefetch_of_l3_resident_line_skips_reinstall(self, mem):
        mem.l3.install(100)
        mem.prefetch_line(100, 0, nta=True)
        mem.lfbs.drain(10_000)
        assert mem.l1.contains(100)
        assert not mem.l2.contains(100)

    def test_non_nta_prefetch_installs_hierarchy(self, mem):
        mem.prefetch_line(100, 0, nta=False)
        mem.lfbs.drain(10_000)
        assert mem.l1.contains(100) and mem.l2.contains(100) and mem.l3.contains(100)

    def test_prefetch_then_load_is_lfb_hit_mid_flight(self, mem):
        mem.prefetch_line(100, 0)
        outcome = mem.load_line(100, 50)
        assert outcome.level == "LFB"
        assert outcome.ready == HASWELL.dram_latency

    def test_prefetch_then_late_load_is_l1_hit(self, mem):
        mem.prefetch_line(100, 0)
        outcome = mem.load_line(100, HASWELL.dram_latency + 1)
        assert outcome.level == "L1"

    def test_prefetch_of_resident_line_is_useless(self, mem):
        mem.warm_lines([100])
        mem.prefetch_line(100, 0)
        assert mem.stats.prefetch_useless == 1

    def test_demand_merge_upgrades_nta(self, mem):
        mem.prefetch_line(100, 0, nta=True)
        mem.load_line(100, 10)
        mem.lfbs.drain(10_000)
        assert mem.l2.contains(100)  # upgraded install


class TestLfbPressure:
    def test_issue_stall_when_buffers_full(self, mem):
        for line in range(HASWELL.n_line_fill_buffers):
            mem.prefetch_line(1000 + line, 0)
        outcome = mem.load_line(5000, 1)
        assert outcome.issue_stall > 0
        assert outcome.ready > HASWELL.dram_latency

    def test_peak_occupancy_capped(self, mem):
        for line in range(25):
            mem.prefetch_line(2000 + line, 0)
        assert mem.lfbs.peak_occupancy <= HASWELL.n_line_fill_buffers


class TestStats:
    def test_delta(self, mem):
        mem.load_line(1, 0)
        before = mem.stats.snapshot()
        mem.load_line(2, 0)
        diff = mem.stats.delta(before)
        assert diff.loads == 1

    def test_l1d_misses(self, mem):
        first = mem.load_line(1, 0)
        mem.load_line(1, first.ready + 1)
        assert mem.stats.l1d_misses == 1
        assert mem.stats.loads == 2


class TestScaledSpec:
    def test_scaled_caches_shrink(self):
        spec = scaled(64)
        assert spec.l3.size == HASWELL.l3.size // 64
        assert spec.dram_latency == HASWELL.dram_latency

    def test_flush_all(self, mem):
        outcome = mem.load_line(7, 0)
        mem.flush_all()
        again = mem.load_line(7, outcome.ready + 10)
        assert again.level == "DRAM"

    def test_extra_dram_latency_numa_knob(self):
        mem = MemorySystem(HASWELL)
        mem.extra_dram_latency = 100
        outcome = mem.load_line(3, 0)
        assert outcome.ready == HASWELL.dram_latency + 100
