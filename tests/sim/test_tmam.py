"""Unit tests for TMAM pipeline-slot accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.tmam import CATEGORIES, TmamStats


class TestCharging:
    def test_compute_splits_retiring_and_core(self):
        stats = TmamStats()
        stats.charge_compute(10, 10)  # 40 slots, 10 retire
        assert stats.slots["Retiring"] == 10
        assert stats.slots["Core"] == 30
        assert stats.cycles == 10
        stats.check_consistency()

    def test_memory_stall_books_all_slots(self):
        stats = TmamStats()
        stats.charge_memory_stall(5)
        assert stats.slots["Memory"] == 20
        assert stats.memory_stall_cycles == 5
        stats.check_consistency()

    def test_translation_and_lfb_substats(self):
        stats = TmamStats()
        stats.charge_memory_stall(5, translation=True)
        stats.charge_memory_stall(3, lfb=True)
        assert stats.translation_stall_cycles == 5
        assert stats.lfb_stall_cycles == 3
        assert stats.memory_stall_cycles == 8

    def test_mispredict_splits_badspec_and_frontend(self):
        stats = TmamStats()
        stats.charge_mispredict(16)
        assert stats.mispredicts == 1
        assert stats.slots["Bad Speculation"] == 48
        assert stats.slots["Front-End"] == 16
        stats.check_consistency()

    def test_uop_overflow_normalizes_cycles(self):
        stats = TmamStats()
        stats.charge_compute(1, 9)  # needs ceil(9/4) = 3 cycles
        assert stats.cycles == 3
        assert stats.slots["Retiring"] == 9
        assert stats.slots["Core"] == 3
        stats.check_consistency()

    def test_negative_charges_rejected(self):
        stats = TmamStats()
        with pytest.raises(SimulationError):
            stats.charge_compute(-1, 0)
        with pytest.raises(SimulationError):
            stats.charge_memory_stall(-1)
        with pytest.raises(SimulationError):
            stats.charge_mispredict(-1)


class TestReporting:
    def test_breakdown_fractions_sum_to_one(self):
        stats = TmamStats()
        stats.charge_compute(10, 25)
        stats.charge_memory_stall(7)
        stats.charge_mispredict(15)
        assert sum(stats.breakdown().values()) == pytest.approx(1.0)
        assert set(stats.breakdown()) == set(CATEGORIES)

    def test_empty_breakdown_is_zero(self):
        assert all(v == 0.0 for v in TmamStats().breakdown().values())

    def test_cpi(self):
        stats = TmamStats()
        stats.charge_compute(9, 10)
        stats.charge_memory_stall(1)
        assert stats.cpi == pytest.approx(1.0)

    def test_cpi_without_instructions(self):
        assert TmamStats().cpi == 0.0

    def test_cycles_by_category_sums_to_cycles(self):
        stats = TmamStats()
        stats.charge_compute(10, 20)
        stats.charge_memory_stall(90)
        total = sum(stats.cycles_by_category().values())
        assert total == pytest.approx(stats.cycles)

    def test_snapshot_and_delta(self):
        stats = TmamStats()
        stats.charge_compute(10, 10)
        snap = stats.snapshot()
        stats.charge_memory_stall(5)
        diff = stats.delta(snap)
        assert diff.cycles == 5
        assert diff.memory_stall_cycles == 5
        assert diff.slots["Retiring"] == 0
        # Snapshot unaffected by later charges.
        assert snap.cycles == 10

    def test_consistency_violation_detected(self):
        stats = TmamStats()
        stats.charge_compute(10, 10)
        stats.slots["Core"] += 5  # corrupt
        with pytest.raises(SimulationError):
            stats.check_consistency()
