"""Unit tests for the line-fill-buffer pool."""

import pytest

from repro.errors import SimulationError
from repro.sim.lfb import FillRequest, LineFillBuffers


def make_pool(capacity=4):
    completed = []
    pool = LineFillBuffers(capacity, completed.append)
    return pool, completed


def fill(line, issue, latency, **kw):
    return FillRequest(line, issue, issue + latency, "DRAM", **kw)


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            LineFillBuffers(0, lambda r: None)

    def test_add_and_find(self):
        pool, _ = make_pool()
        request = pool.add(fill(7, 0, 100))
        assert pool.find(7) is request
        assert pool.find(8) is None
        assert pool.occupancy == 1

    def test_drain_completes_due_fills(self):
        pool, completed = make_pool()
        pool.add(fill(1, 0, 50))
        pool.add(fill(2, 0, 150))
        pool.drain(100)
        assert [r.line for r in completed] == [1]
        assert pool.find(1) is None
        assert pool.find(2) is not None
        pool.drain(200)
        assert [r.line for r in completed] == [1, 2]

    def test_merge_same_line(self):
        pool, _ = make_pool()
        first = pool.add(fill(5, 0, 100, non_temporal=True, is_prefetch=True))
        merged = pool.add(fill(5, 10, 100))
        assert merged is first
        assert pool.merges == 1
        assert pool.occupancy == 1
        # Demand merge upgrades the NTA prefetch to a full demand fill.
        assert not first.non_temporal
        assert not first.is_prefetch

    def test_flush_completes_everything(self):
        pool, completed = make_pool()
        pool.add(fill(1, 0, 500))
        pool.add(fill(2, 0, 900))
        pool.flush(0)
        assert len(completed) == 2
        assert pool.occupancy == 0


class TestCapacityPressure:
    def test_acquire_waits_for_earliest_completion(self):
        pool, _ = make_pool(capacity=2)
        pool.add(fill(1, 0, 100))
        pool.add(fill(2, 0, 60))
        start = pool.acquire(10)
        assert start == 60  # line 2 completes first
        assert pool.issue_stall_cycles == 50
        assert pool.occupancy == 1

    def test_acquire_no_wait_when_free(self):
        pool, _ = make_pool(capacity=2)
        pool.add(fill(1, 0, 100))
        assert pool.acquire(10) == 10
        assert pool.issue_stall_cycles == 0

    def test_overflow_without_acquire_raises(self):
        pool, _ = make_pool(capacity=1)
        pool.add(fill(1, 0, 100))
        with pytest.raises(SimulationError):
            pool.add(fill(2, 0, 100))

    def test_peak_occupancy_tracking(self):
        pool, _ = make_pool(capacity=4)
        for line in range(3):
            pool.add(fill(line, 0, 100))
        pool.drain(200)
        pool.add(fill(9, 200, 100))
        assert pool.peak_occupancy == 3
