"""Unit tests for the execution engine."""

import pytest

from repro.config import HASWELL
from repro.errors import SimulationError
from repro.sim.engine import ExecutionEngine, StreamContext
from repro.sim.events import SUSPEND, Compute, FrameAlloc, Load, Prefetch


@pytest.fixture
def eng():
    return ExecutionEngine(HASWELL)


BASE = 1 << 22
COST = HASWELL.cost


class TestCompute:
    def test_compute_advances_clock(self, eng):
        eng.compute(10, 10)
        assert eng.clock == 10
        assert eng.tmam.instructions == 10

    def test_compute_more_uops_than_slots_extends_cycles(self, eng):
        eng.compute(1, 40)  # 40 uops cannot retire in 4 slots
        assert eng.clock == 10
        eng.tmam.check_consistency()

    def test_tmam_consistency_after_mixed_work(self, eng):
        eng.compute(5, 3)
        eng.execute_load(Load(BASE, 8), StreamContext())
        eng.tmam.check_consistency()


class TestLoads:
    def test_cold_load_stalls_for_exposed_latency(self, eng):
        ctx = StreamContext()
        eng.execute_load(Load(BASE, 8), ctx)
        # Translation walk (PW-DRAM) + DRAM latency - OoO hiding.
        assert eng.tmam.memory_stall_cycles > HASWELL.dram_latency
        assert eng.memory.stats.loads_by_level["DRAM"] == 1

    def test_warm_load_is_free_of_stall(self, eng):
        line = BASE // HASWELL.line_size
        eng.memory.warm_lines([line])
        eng.memory.translate(BASE, 0)  # pre-warm TLB
        stalls_before = eng.tmam.memory_stall_cycles
        eng.execute_load(Load(BASE, 8), StreamContext())
        # L1 latency (4) is under the OoO hiding window: no stall.
        assert eng.tmam.memory_stall_cycles == stalls_before

    def test_line_crossing_load_touches_two_lines(self, eng):
        eng.execute_load(Load(BASE + HASWELL.line_size - 4, 8), StreamContext())
        assert eng.memory.stats.loads == 2

    def test_prefetched_load_has_reduced_stall(self, eng):
        ctx = StreamContext()
        eng.execute_prefetch(Prefetch(BASE, 64))
        issue_clock = eng.clock
        eng.compute(100, 100)
        eng.execute_load(Load(BASE, 8), ctx)
        # The load arrives 100 cycles into a 182-cycle fill: ~82 exposed.
        exposed = eng.tmam.memory_stall_cycles - eng.tmam.translation_stall_cycles
        assert 0 < exposed < HASWELL.dram_latency - 50
        assert eng.memory.stats.loads_by_level["LFB"] == 1

    def test_fully_covered_prefetch_no_stall(self, eng):
        eng.execute_prefetch(Prefetch(BASE, 64))
        eng.compute(300, 300)
        stalls_before = eng.tmam.memory_stall_cycles
        eng.execute_load(Load(BASE, 8), StreamContext())
        assert eng.tmam.memory_stall_cycles == stalls_before
        assert eng.memory.stats.loads_by_level["L1"] == 1


class TestSpeculation:
    def test_correct_prediction_overlaps_next_load(self):
        eng = ExecutionEngine(HASWELL, seed=0)
        ctx = StreamContext()
        next_addr = BASE + 4096 * 8
        # Both candidates equal: the prediction is always "correct".
        eng.execute_load(Load(BASE, 8, spec_next=(next_addr, next_addr)), ctx)
        assert ctx.predicted_line == next_addr // HASWELL.line_size
        mispredicts_before = eng.tmam.mispredicts
        eng.execute_load(Load(next_addr, 8), ctx)
        assert eng.tmam.mispredicts == mispredicts_before
        # The speculative fill started during the first stall.
        assert eng.memory.stats.loads_by_level["LFB"] >= 1

    def test_wrong_prediction_charges_penalty(self):
        eng = ExecutionEngine(HASWELL, seed=0)
        ctx = StreamContext()
        a, b = BASE + 1 << 20, BASE + 2 << 20
        eng.execute_load(Load(BASE, 8, spec_next=(a, a)), ctx)
        eng.execute_load(Load(b, 8), ctx)  # stream went the other way
        assert eng.tmam.mispredicts == 1
        assert eng.tmam.slots["Bad Speculation"] > 0

    def test_prediction_state_cleared_after_resolution(self):
        eng = ExecutionEngine(HASWELL, seed=0)
        ctx = StreamContext()
        eng.execute_load(Load(BASE, 8, spec_next=(BASE + 64, BASE + 64)), ctx)
        eng.execute_load(Load(BASE + 64, 8), ctx)
        assert ctx.predicted_line is None


class TestDispatchAndRun:
    def test_run_returns_stream_result(self, eng):
        def stream():
            yield Compute(1, 1)
            return "done"

        assert eng.run(stream()) == "done"

    def test_suspend_without_scheduler_raises(self, eng):
        def stream():
            yield SUSPEND

        with pytest.raises(SimulationError, match="Suspend"):
            eng.run(stream())

    def test_unknown_event_raises(self, eng):
        with pytest.raises(SimulationError):
            eng.dispatch(object(), StreamContext())

    def test_run_all_sequential(self, eng):
        def stream(i):
            yield Compute(1, 1)
            return i

        assert eng.run_all(stream(i) for i in range(3)) == [0, 1, 2]

    def test_frame_alloc_charges_cost(self, eng):
        def stream():
            yield FrameAlloc()
            return None

        eng.run(stream())
        assert eng.clock == COST.frame_alloc_cycles

    def test_charge_switch_kinds(self, eng):
        eng.charge_switch("coro")
        assert eng.clock == COST.coro_switch[0]
        with pytest.raises(SimulationError):
            eng.charge_switch("nonsense")

    def test_snapshot_is_immutable_copy(self, eng):
        snap = eng.snapshot()
        eng.compute(10, 10)
        assert snap.cycles == 0
        assert eng.snapshot().cycles == 10

    def test_mismatched_memory_arch_rejected(self):
        from repro.config import scaled
        from repro.sim.memory import MemorySystem

        with pytest.raises(SimulationError):
            ExecutionEngine(HASWELL, MemorySystem(scaled(2)))
