"""Unit and property tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheSpec
from repro.errors import ConfigurationError
from repro.sim.cache import SetAssociativeCache


def make_cache(size=1024, assoc=2, line=64):
    return SetAssociativeCache(CacheSpec("T", size, assoc, 4), line)


class TestGeometry:
    def test_n_sets(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        assert cache.n_sets == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(CacheSpec("T", 100, 3, 4), 64)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheSpec("T", 0, 2, 4)


class TestLookupInstall:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(5)
        cache.install(5)
        assert cache.lookup(5)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_within_set(self):
        cache = make_cache(size=1024, assoc=2, line=64)  # 8 sets
        # Lines 0, 8, 16 all map to set 0 in an 8-set cache.
        cache.install(0)
        cache.install(8)
        evicted = cache.install(16)
        assert evicted == 0
        assert not cache.contains(0)
        assert cache.contains(8) and cache.contains(16)

    def test_lookup_promotes_to_mru(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        cache.install(0)
        cache.install(8)
        assert cache.lookup(0)  # 0 becomes MRU, 8 becomes LRU
        evicted = cache.install(16)
        assert evicted == 8

    def test_reinstall_refreshes_lru(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        cache.install(0)
        cache.install(8)
        cache.install(0)  # refresh
        assert cache.install(16) == 8

    def test_contains_does_not_touch_lru_or_stats(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        cache.install(0)
        cache.install(8)
        assert cache.contains(0)
        assert cache.stats.hits == 0 and cache.stats.misses == 0
        assert cache.install(16) == 0  # 0 was still LRU

    def test_invalidate(self):
        cache = make_cache()
        cache.install(3)
        assert cache.invalidate(3)
        assert not cache.invalidate(3)
        assert not cache.contains(3)

    def test_flush_preserves_stats(self):
        cache = make_cache()
        cache.install(1)
        cache.lookup(1)
        cache.flush()
        assert cache.resident_lines == 0
        assert cache.stats.hits == 1

    def test_different_sets_do_not_conflict(self):
        cache = make_cache(size=1024, assoc=2, line=64)
        for line in range(8):  # one line per set
            cache.install(line)
        assert cache.resident_lines == 8
        assert all(cache.contains(line) for line in range(8))


class TestProperties:
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=200), max_size=300),
        assoc=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, lines, assoc):
        cache = SetAssociativeCache(CacheSpec("T", 64 * assoc * 4, assoc, 1), 64)
        for line in lines:
            cache.install(line)
            assert cache.resident_lines <= assoc * cache.n_sets
        for ways in cache._sets:
            assert len(ways) <= assoc

    @given(lines=st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_install_makes_resident_until_evicted(self, lines):
        cache = make_cache(size=512, assoc=2, line=64)  # 4 sets
        resident: set[int] = set()
        for line in lines:
            evicted = cache.install(line)
            resident.add(line)
            if evicted is not None:
                resident.discard(evicted)
            assert cache.contains(line)
        assert {l for l in resident if cache.contains(l)} == resident

    @given(lines=st.lists(st.integers(min_value=0, max_value=100), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = make_cache()
        for line in lines:
            if cache.lookup(line):
                pass
            else:
                cache.install(line)
        assert cache.stats.accesses == len(lines)
