"""Documentation consistency: referenced files and names must exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def referenced_paths(text: str) -> set[str]:
    """Extract repo-relative .py/.md/.txt paths mentioned in a document."""
    pattern = re.compile(r"`([\w/ .-]+\.(?:py|md))`")
    return {match.group(1) for match in pattern.finditer(text)}


class TestDocsReferenceRealFiles:
    @pytest.mark.parametrize(
        "doc",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/paper_mapping.md",
         "docs/observability.md", "docs/architecture.md"],
    )
    def test_referenced_files_exist(self, doc):
        text = (ROOT / doc).read_text()
        missing = []
        for path in referenced_paths(text):
            candidates = [
                ROOT / path,
                ROOT / "src" / path,
                ROOT / "benchmarks" / path,
            ]
            if any(candidate.exists() for candidate in candidates):
                continue
            # Bare module names ("cache.py") may refer to any submodule.
            if "/" not in path and list(ROOT.rglob(path)):
                continue
            missing.append(path)
        assert not missing, f"{doc} references missing files: {missing}"

    def test_experiments_covers_every_benchmark(self):
        """EXPERIMENTS.md must mention every benchmark module."""
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in text, f"EXPERIMENTS.md misses {bench.name}"

    def test_paper_mapping_covers_every_listing(self):
        text = (ROOT / "docs" / "paper_mapping.md").read_text()
        for listing in range(1, 8):
            assert f"Listing {listing}" in text

    def test_design_lists_every_source_module(self):
        """DESIGN.md's inventory names each repro submodule file."""
        text = (ROOT / "DESIGN.md").read_text()
        exempt = {"__init__.py", "__main__.py", "errors.py", "config.py",
                  "base.py", "binary_search.py", "column.py", "delta.py",
                  "dictionary.py", "query.py", "scan.py", "table.py",
                  "figures.py", "results_io.py", "skip_list.py",
                  "generators.py", "strings.py", "tpcds.py", "cli.py"}
        missing = []
        for module in sorted((ROOT / "src" / "repro").rglob("*.py")):
            if module.name in exempt:
                continue
            if module.name not in text:
                missing.append(str(module.relative_to(ROOT)))
        assert not missing, f"DESIGN.md inventory misses: {missing}"

    def test_readme_mentions_all_examples(self):
        text = (ROOT / "README.md").read_text()
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in text, f"README misses examples/{example.name}"
