"""Tests for the admission controller: bounded queue, policies, bucket."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import (
    OVERLOAD_POLICIES,
    AdmissionController,
    TokenBucket,
)
from repro.service.request import Request


def offer_n(controller, n, start_cycle=0):
    """Offer ``n`` back-to-back arrivals; return their verdicts."""
    return [
        controller.offer(Request(i, i, arrival=start_cycle + i))
        for i in range(n)
    ]


class TestBoundedQueue:
    def test_queue_never_exceeds_capacity(self):
        controller = AdmissionController(4)
        verdicts = offer_n(controller, 10)
        assert verdicts == ["admit"] * 4 + ["reject"] * 6
        assert len(controller) == 4
        assert controller.peak_depth == 4

    def test_counters_account_for_every_arrival(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(3, metrics=metrics)
        offer_n(controller, 8)
        tree = metrics.snapshot()["service"]
        assert tree["arrivals"] == 8
        assert tree["admitted"] == 3
        assert tree["rejected"] == 5
        assert tree["admitted"] + tree["rejected"] == tree["arrivals"]

    def test_take_drains_in_arrival_order_and_updates_depth(self):
        controller = AdmissionController(8)
        offer_n(controller, 5)
        batch = controller.take(3)
        assert [r.index for r in batch] == [0, 1, 2]
        assert len(controller) == 2
        assert controller.take(10) and len(controller) == 0
        assert controller.peak_depth == 5  # peak survives the drain

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(0)


class TestOverloadPolicies:
    def test_all_policies_are_exercisable(self):
        assert OVERLOAD_POLICIES == ("reject", "drop", "shed")

    def test_drop_policy_marks_outcome_and_counter(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(2, policy="drop", metrics=metrics)
        requests = [Request(i, i, arrival=i) for i in range(4)]
        verdicts = [controller.offer(r) for r in requests]
        assert verdicts == ["admit", "admit", "drop", "drop"]
        assert requests[3].outcome == "dropped"
        assert metrics.snapshot()["service"]["dropped"] == 2

    def test_shed_policy_diverts_without_queueing(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(2, policy="shed", metrics=metrics)
        requests = [Request(i, i, arrival=i) for i in range(4)]
        verdicts = [controller.offer(r) for r in requests]
        assert verdicts == ["admit", "admit", "shed", "shed"]
        assert requests[2].outcome == "shed"
        assert len(controller) == 2  # shed traffic never entered the queue
        assert metrics.snapshot()["service"]["shed"] == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            AdmissionController(4, policy="backpressure")


class TestTokenBucket:
    def test_burst_then_starvation(self):
        bucket = TokenBucket(rate_per_kcycle=1.0, burst=3)
        assert [bucket.try_take(0) for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_with_elapsed_cycles(self):
        bucket = TokenBucket(rate_per_kcycle=1.0, burst=1)
        assert bucket.try_take(0)
        assert not bucket.try_take(10)  # 0.01 tokens refilled
        assert bucket.try_take(1_500)  # 1.5 kcycles -> >1 token

    def test_level_caps_at_burst(self):
        bucket = TokenBucket(rate_per_kcycle=10.0, burst=2)
        bucket.try_take(0)
        bucket.try_take(1_000_000)  # eons later: still only ``burst`` held
        assert bucket.level <= 2

    def test_time_going_backwards_is_tolerated(self):
        bucket = TokenBucket(rate_per_kcycle=1.0, burst=2)
        assert bucket.try_take(5_000)
        assert bucket.try_take(4_000)  # no negative refill, no crash

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(0.0, 4)
        with pytest.raises(ConfigurationError):
            TokenBucket(1.0, 0)


class TestRateLimitedAdmission:
    def test_rate_limited_arrivals_count_as_rejected_too(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            10,
            rate_limiter=TokenBucket(rate_per_kcycle=0.001, burst=2),
            metrics=metrics,
        )
        verdicts = offer_n(controller, 5)
        assert verdicts == ["admit", "admit", "reject", "reject", "reject"]
        tree = metrics.snapshot()["service"]
        assert tree["rate_limited"] == 3
        assert tree["rejected"] == 3  # the limiter refuses via "reject"
        assert len(controller) == 2
