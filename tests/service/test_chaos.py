"""Chaos serving: the server's reactions to an injected fault schedule.

Targeted schedules against a small, fast server — each test hands the
:class:`ServiceServer` exactly one kind of trouble and asserts the
matching resilience response (and its counter) fires. The sweep-level
tests at the bottom cover :func:`run_scenario`'s chaos document and the
"no faults means bit-identical" invariant.
"""

import dataclasses
import json

import pytest

from repro import scaled
from repro.errors import ConfigurationError
from repro.faults import (
    CacheFlush,
    FaultSchedule,
    LatencySpike,
    LfbShrink,
    ShardCrash,
    ShardStall,
)
from repro.service import (
    CHAOS_SCHEMA,
    SERVICE_SCHEMA,
    ServiceConfig,
    ServiceServer,
    make_arrivals,
    run_scenario,
)
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.generators import make_table

ARCH = scaled(64)
N_REQUESTS = 60


@pytest.fixture(scope="module")
def table():
    allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
    return make_table(allocator, "chaos-test/dict", 1 << 20)


def serve(table, schedule, *, seed=0, rate=1.0, **config_kwargs):
    config = ServiceConfig(
        technique="CORO",
        max_batch=16,
        max_wait_cycles=2_000,
        queue_capacity=64,
        n_shards=2,
        warmup_requests=8,
        **config_kwargs,
    )
    arrivals = make_arrivals("poisson", N_REQUESTS, seed, rate_per_kcycle=rate)
    values = list(range(0, N_REQUESTS * 7, 7))
    server = ServiceServer(table, config, arch=ARCH, seed=seed, faults=schedule)
    return server.serve(arrivals, values)


class TestCrashResponses:
    SCHEDULE = FaultSchedule(
        events=(ShardCrash(at=8_000, shard=0, duration=12_000),
                ShardCrash(at=9_000, shard=1, duration=12_000))
    )

    def test_crash_without_budget_fails_the_batch(self, table):
        report = serve(table, self.SCHEDULE, max_retries=0)
        res = report.resilience
        assert res["batch_failures"] > 0
        assert res["failed"] > 0
        assert res["retries"] == 0
        assert any(r.outcome == "failed" for r in report.requests)

    def test_retry_budget_rescues_crashed_requests(self, table):
        report = serve(table, self.SCHEDULE, max_retries=2)
        res = report.resilience
        assert res["batch_failures"] > 0
        assert res["retries"] > 0
        assert res["failed"] == 0
        retried = [r for r in report.requests if r.attempts > 1]
        assert retried and all(r.outcome == "completed" for r in retried)

    def test_crash_counts_into_fault_metrics(self, table):
        report = serve(table, self.SCHEDULE, max_retries=2)
        assert report.resilience["faults"]["shard_crash"] > 0


class TestOutageResponses:
    def test_stall_delays_dispatch(self, table):
        schedule = FaultSchedule(
            events=(ShardStall(at=5_000, shard=None, duration=15_000),)
        )
        report = serve(table, schedule)
        assert report.resilience["outage_delays"] > 0
        assert report.resilience["failed"] == 0  # stalls never kill work

    def test_overflow_fallback_serves_through_a_blackout(self, table):
        schedule = FaultSchedule(
            events=(ShardStall(at=5_000, shard=None, duration=40_000),)
        )
        walled = serve(table, schedule, overflow_fallback=False)
        fallback = serve(table, schedule, overflow_fallback=True)
        assert fallback.resilience["fallback_batches"] > 0
        # The fallback lane answers during the blackout instead of
        # parking everything behind it.
        assert fallback.latency_percentiles()["p99"] < (
            walled.latency_percentiles()["p99"]
        )


class TestDegradation:
    SCHEDULE = FaultSchedule(
        events=(LfbShrink(at=0, duration=400_000, capacity=3),)
    )

    def test_adaptive_policy_shrinks_the_group(self, table):
        report = serve(table, self.SCHEDULE, degradation="adaptive")
        assert report.resilience["degraded_batches"] > 0

    def test_off_policy_keeps_the_configured_group(self, table):
        report = serve(table, self.SCHEDULE, degradation="off")
        assert report.resilience["degraded_batches"] == 0


class TestTimeouts:
    def test_stale_requests_time_out_at_dispatch(self, table):
        schedule = FaultSchedule(
            events=(ShardStall(at=2_000, shard=None, duration=30_000),)
        )
        report = serve(table, schedule, timeout_cycles=10_000, rate=2.0)
        res = report.resilience
        assert res["timeouts"] > 0
        assert any(r.outcome == "timeout" for r in report.requests)


class TestHedging:
    def test_stall_triggers_hedged_dispatch(self, table):
        # A full stall makes every batch triggered inside it dispatch
        # late; each such batch then earns a duplicate leg.
        schedule = FaultSchedule(
            events=(ShardStall(at=5_000, shard=None, duration=25_000),)
        )
        report = serve(table, schedule, hedge_after_cycles=4_000, rate=2.0)
        res = report.resilience
        assert res["hedges"] > 0
        assert res["hedge_wins"] <= res["hedges"]


class TestDeterminism:
    SCHEDULE = FaultSchedule(
        events=(
            LatencySpike(at=2_000, duration=20_000, extra_latency=300),
            ShardCrash(at=10_000, shard=0, duration=10_000),
            CacheFlush(at=15_000, llc=True),
        ),
        seed=3,
    )

    def test_same_seed_same_chaos_bit_for_bit(self, table):
        kwargs = dict(max_retries=2, hedge_after_cycles=6_000)
        first = serve(table, self.SCHEDULE, **kwargs)
        second = serve(table, self.SCHEDULE, **kwargs)
        assert [dataclasses.asdict(r) for r in first.requests] == [
            dataclasses.asdict(r) for r in second.requests
        ]
        assert first.resilience == second.resilience
        assert first.makespan == second.makespan

    def test_empty_schedule_matches_no_schedule(self, table):
        plain = serve(table, None)
        empty = serve(table, FaultSchedule(events=()))
        assert [dataclasses.asdict(r) for r in plain.requests] == [
            dataclasses.asdict(r) for r in empty.requests
        ]
        assert plain.makespan == empty.makespan


class TestConfigValidation:
    def test_bad_resilience_config_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            ServiceConfig(timeout_cycles=0)
        with pytest.raises(ConfigurationError, match="retries"):
            ServiceConfig(max_retries=-1)
        with pytest.raises(ConfigurationError, match="degradation"):
            ServiceConfig(degradation="panic")


class TestChaosSweep:
    def test_chaos_quick_document_is_reproducible(self):
        first = run_scenario("chaos-quick", seed=0)
        second = run_scenario("chaos-quick", seed=0)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_chaos_quick_document_shape(self):
        doc = run_scenario("chaos-quick", seed=0)
        assert doc["schema"] == CHAOS_SCHEMA
        assert doc["fault_profile"] == "chaos-quick"
        for point in doc["points"]:
            assert point["fault_events"] == 4  # the fixed CI-sized cocktail
            assert set(point["faults_by_kind"]) == {
                "latency_spike", "shard_stall", "shard_crash",
                "cache_flush", "lfb_shrink",
            }

    def test_faults_none_is_bitwise_plain_serving(self):
        plain = run_scenario("quick", seed=0)
        explicit = run_scenario("quick", seed=0, faults="none")
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            explicit, sort_keys=True
        )
        assert plain["schema"] == SERVICE_SCHEMA

    def test_faults_override_on_a_plain_scenario(self):
        doc = run_scenario("quick", seed=0, faults="chaos-quick")
        assert doc["schema"] == CHAOS_SCHEMA
        assert doc["fault_profile"] == "chaos-quick"
