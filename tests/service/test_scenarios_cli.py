"""Tests for the scenario registry and the ``serve``/``list`` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigurationError, WorkloadError
from repro.service.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)


class TestRegistry:
    def test_builtin_scenarios_are_registered(self):
        names = scenario_names()
        for name in ("mixed", "steady", "burst", "closed", "quick"):
            assert name in names

    def test_lookup_is_case_insensitive(self):
        assert get_scenario("MIXED") is get_scenario("mixed")

    def test_unknown_scenario_lists_registered(self):
        with pytest.raises(WorkloadError, match="quick"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            register_scenario(SCENARIO_REGISTRY["quick"])

    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError, match="arrival kind"):
            Scenario(name="x", description="", arrival_kind="uniform")
        with pytest.raises(ConfigurationError, match="loads"):
            Scenario(name="x", description="", loads=(0.0,))
        with pytest.raises(ConfigurationError, match="techniques"):
            Scenario(name="x", description="", techniques=())


class TestListVerb:
    def test_list_includes_a_scenarios_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios (python -m repro serve <name>):" in out
        for name in scenario_names():
            assert name in out

    def test_scenario_rows_carry_kind_and_techniques(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        scenario_block = out.split("scenarios")[1]
        assert "poisson" in scenario_block
        assert "bursty" in scenario_block
        assert "CORO" in scenario_block


class TestUnknownNameSuggestions:
    def test_scenario_name_given_as_experiment_suggests_serve(self, capsys):
        assert main(["mixed"]) == 2
        err = capsys.readouterr().err
        assert "python -m repro serve mixed" in err

    def test_plain_unknown_name_gets_no_serve_hint(self, capsys):
        assert main(["nonsense"]) == 2
        err = capsys.readouterr().err
        assert "serve nonsense" not in err
        assert "serving scenarios" in err  # the list pointer still shows


class TestServeVerb:
    def test_serve_quick_json_is_a_valid_document(self, capsys):
        assert main(["serve", "quick", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.service/1"
        assert doc["scenario"] == "quick"
        quick = get_scenario("quick")
        assert len(doc["points"]) == len(quick.loads) * len(quick.techniques)
        for point in doc["points"]:
            assert point["offered_load"] > 0
            assert point["p50"] <= point["p95"] <= point["p99"]

    def test_serve_ascii_renders_the_table(self, capsys):
        assert main(["serve", "quick"]) == 0
        out = capsys.readouterr().out
        assert "serve quick" in out
        assert "thruput/kcyc" in out
        assert "sequential" in out and "CORO" in out

    def test_serve_unknown_scenario_fails_with_listing(self, capsys):
        assert main(["serve", "nope"]) == 2  # usage error, not runtime
        err = capsys.readouterr().err
        assert "serve: unknown scenario" in err
        assert "quick" in err

    def test_serve_seed_changes_the_numbers(self, capsys):
        main(["serve", "quick", "--json"])
        first = json.loads(capsys.readouterr().out)
        main(["serve", "quick", "--json", "--seed", "7"])
        second = json.loads(capsys.readouterr().out)
        assert first["seed"] == 0 and second["seed"] == 7
        assert first["points"] != second["points"]

    def test_serve_same_seed_is_reproducible(self, capsys):
        main(["serve", "quick", "--json"])
        first = capsys.readouterr().out
        main(["serve", "quick", "--json"])
        second = capsys.readouterr().out
        assert first == second  # byte-identical document
