"""Tests for arrival processes: determinism, shapes, RNG isolation."""

import random

import pytest

from repro.errors import WorkloadError
from repro.service.arrivals import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    ClosedLoopArrivals,
    PoissonArrivals,
    make_arrivals,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: PoissonArrivals(2.0, 200, seed),
            lambda seed: BurstyArrivals(0.5, 4.0, 5_000, 10_000, 200, seed),
            lambda seed: ClosedLoopArrivals(8, 3_000, 50, seed),
        ],
        ids=["poisson", "bursty", "closed"],
    )
    def test_same_seed_same_schedule(self, factory):
        assert factory(42).drain() == factory(42).drain()

    def test_different_seeds_differ(self):
        a = PoissonArrivals(2.0, 200, seed=1).drain()
        b = PoissonArrivals(2.0, 200, seed=2).drain()
        assert a != b

    def test_global_rng_is_never_touched(self):
        # The processes own private Random instances; constructing and
        # draining them must leave the module-level RNG state intact.
        random.seed(1234)
        before = random.getstate()
        PoissonArrivals(2.0, 100, seed=5).drain()
        BurstyArrivals(0.5, 4.0, 5_000, 10_000, 100, seed=5).drain()
        closed = ClosedLoopArrivals(4, 2_000, 20, seed=5)
        closed.drain()
        closed.notify_completion(10_000)
        assert random.getstate() == before

    def test_schedule_is_immune_to_global_seeding(self):
        random.seed(1)
        a = PoissonArrivals(2.0, 100, seed=9).drain()
        random.seed(2)
        b = PoissonArrivals(2.0, 100, seed=9).drain()
        assert a == b


class TestPoisson:
    def test_times_non_decreasing_and_counted(self):
        arrivals = PoissonArrivals(2.0, 300, seed=0)
        times = arrivals.drain()
        assert len(times) == 300
        assert arrivals.issued == 300
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_empirical_rate_tracks_the_requested_one(self):
        rate = 2.0  # per kilocycle
        times = PoissonArrivals(rate, 2_000, seed=3).drain()
        empirical = len(times) * 1000.0 / times[-1]
        assert empirical == pytest.approx(rate, rel=0.15)

    def test_bad_rate_rejected(self):
        with pytest.raises(WorkloadError, match="rate"):
            PoissonArrivals(0.0, 10, seed=0)
        with pytest.raises(WorkloadError, match="request"):
            PoissonArrivals(1.0, 0, seed=0)


class TestBursty:
    def test_bursts_are_denser_than_gaps(self):
        burst, gap = 10_000, 30_000
        arrivals = BurstyArrivals(0.2, 5.0, burst, gap, 2_000, seed=0)
        period = burst + gap
        in_burst = sum(1 for t in arrivals.drain() if (t % period) < burst)
        # The burst phase covers 25% of time but >60% of arrivals.
        assert in_burst > 0.6 * 2_000

    def test_phase_bounds_validated(self):
        with pytest.raises(WorkloadError, match="phase"):
            BurstyArrivals(1.0, 2.0, 0, 10, 5, seed=0)


class TestClosedLoop:
    def test_initial_window_holds_one_arrival_per_client(self):
        arrivals = ClosedLoopArrivals(6, 5_000, 100, seed=0)
        initial = arrivals.drain()
        assert len(initial) == 6  # nothing more until completions land
        assert all(0 <= t < 5_000 for t in initial)

    def test_completions_schedule_followups_with_bounded_jitter(self):
        arrivals = ClosedLoopArrivals(1, 5_000, 10, seed=0)
        arrivals.drain()
        arrivals.notify_completion(100_000)
        follow_up = arrivals.pop()
        assert 100_000 + 4_000 <= follow_up <= 100_000 + 6_000

    def test_population_caps_total_issues(self):
        arrivals = ClosedLoopArrivals(2, 1_000, 5, seed=0)
        issued = len(arrivals.drain())
        cycle = 0
        while issued < 5:
            cycle += 10_000
            arrivals.notify_completion(cycle)
            issued += len(arrivals.drain())
        arrivals.notify_completion(cycle + 10_000)  # budget exhausted
        assert arrivals.peek() is None
        assert issued == 5

    def test_client_population_never_exceeds_requests(self):
        arrivals = ClosedLoopArrivals(50, 1_000, 3, seed=0)
        assert arrivals.n_clients == 3
        assert len(arrivals.drain()) == 3


class TestFactory:
    def test_every_registered_kind_constructs(self):
        params = {
            "poisson": {"rate_per_kcycle": 1.0},
            "bursty": {
                "base_rate_per_kcycle": 0.5,
                "burst_rate_per_kcycle": 2.0,
                "burst_cycles": 1_000,
                "gap_cycles": 2_000,
            },
            "closed": {"n_clients": 2, "think_cycles": 1_000},
            "diurnal": {
                "base_rate_per_kcycle": 1.0,
                "n_regions": 3,
                "day_cycles": 50_000,
                "amplitude": 0.7,
            },
        }
        assert set(params) == set(ARRIVAL_KINDS)
        for kind, kwargs in params.items():
            arrivals = make_arrivals(kind, 10, 0, **kwargs)
            assert arrivals.kind == kind

    def test_unknown_kind_lists_known_ones(self):
        with pytest.raises(WorkloadError, match="poisson"):
            make_arrivals("uniform", 10, 0)
