"""Tests for batch formation: size and deadline triggers."""

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import AdmissionController
from repro.service.coalescer import Coalescer
from repro.service.request import Request


def make_coalescer(max_batch=4, max_wait=1_000, capacity=64):
    admission = AdmissionController(capacity)
    return Coalescer(admission, max_batch, max_wait), admission


class TestTriggers:
    def test_empty_queue_has_no_trigger(self):
        coalescer, _ = make_coalescer()
        assert coalescer.next_trigger() is None

    def test_partial_batch_triggers_at_head_deadline(self):
        coalescer, admission = make_coalescer(max_batch=4, max_wait=1_000)
        admission.offer(Request(0, 0, arrival=100))
        admission.offer(Request(1, 1, arrival=700))
        assert coalescer.next_trigger() == 1_100  # head arrival + wait

    def test_full_batch_back_dates_to_the_filling_arrival(self):
        coalescer, admission = make_coalescer(max_batch=3, max_wait=10_000)
        for index, arrival in enumerate((100, 150, 220, 300)):
            admission.offer(Request(index, index, arrival=arrival))
        # The third request filled the batch at cycle 220 — the deadline
        # (100 + 10_000) never enters into it.
        assert coalescer.next_trigger() == 220

    def test_zero_wait_means_immediate_dispatch(self):
        coalescer, admission = make_coalescer(max_batch=8, max_wait=0)
        admission.offer(Request(0, 0, arrival=500))
        assert coalescer.next_trigger() == 500


class TestTake:
    def test_take_pops_at_most_max_batch_and_stamps_trigger(self):
        coalescer, admission = make_coalescer(max_batch=3)
        requests = [Request(i, i, arrival=10 * i) for i in range(5)]
        for request in requests:
            admission.offer(request)
        batch = coalescer.take(trigger=20)
        assert [r.index for r in batch] == [0, 1, 2]
        assert all(r.trigger == 20 for r in batch)
        assert len(admission) == 2
        assert requests[3].trigger is None  # still waiting

    def test_take_of_partial_queue_returns_what_is_there(self):
        coalescer, admission = make_coalescer(max_batch=10)
        admission.offer(Request(0, 0, arrival=0))
        assert len(coalescer.take(trigger=1_000)) == 1


class TestValidation:
    def test_batch_of_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            make_coalescer(max_batch=0)

    def test_negative_wait_rejected(self):
        with pytest.raises(ConfigurationError):
            make_coalescer(max_wait=-1)
