"""End-to-end request tracing across serving scenarios.

The acceptance criteria of the observability layer, asserted at the
scenario level: with tracing enabled, every request that reached a
terminal state yields a rooted, gap-free span tree whose stage cycles
sum to its end-to-end latency; tracing changes no simulated outcome
(the traced sweep's document is byte-identical to the untraced one);
and ``explain`` resolves the same exemplar request, with the same
critical path, on every run of the same seed.
"""

import json

import pytest

from repro.errors import WorkloadError
from repro.obs.rtrace import trace_errors
from repro.service.explain import explain_point
from repro.service.loadgen import run_scenario, run_traced_scenario
from repro.service.scenarios import Scenario, get_scenario

#: A third lifecycle mix on top of quick/chaos-quick: bursty arrivals
#: into a shed-policy server, so shed/overflow traces appear at scale.
BURSTY_SHED = Scenario(
    name="bursty-shed-test",
    description="bursty arrivals over a shedding admission controller",
    arrival_kind="bursty",
    arrival_params={"burst_cycles": 20_000, "gap_cycles": 40_000},
    loads=(2.0,),
    techniques=("CORO",),
    n_requests=120,
    config=get_scenario("quick").config.__class__(
        max_batch=16,
        max_wait_cycles=2500,
        queue_capacity=24,
        overload_policy="shed",
        n_shards=2,
        slo_cycles=25_000,
    ),
)

SCENARIOS = ("quick", "chaos-quick", BURSTY_SHED)


def _scenario_id(scenario):
    return scenario if isinstance(scenario, str) else scenario.name


@pytest.fixture(scope="module", params=SCENARIOS, ids=_scenario_id)
def traced_sweep(request):
    scenario = request.param
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    doc, traced = run_traced_scenario(scenario, seed=0)
    return scenario, doc, traced


class TestSpanTreeAcceptance:
    def test_every_terminal_request_yields_a_wellformed_trace(
        self, traced_sweep
    ):
        scenario, doc, traced = traced_sweep
        labels = list(traced)
        assert len(labels) == len(doc["points"])
        for label, point in zip(labels, doc["points"]):
            traces = traced[label]["traces"]
            # Every arrival reached the tracer and became a span tree.
            assert len(traces) == point["arrivals"], label
            for trace in traces:
                defects = trace_errors(trace)
                assert defects == [], (label, trace["trace_id"], defects)

    def test_stage_cycles_sum_to_latency_for_every_answered_request(
        self, traced_sweep
    ):
        scenario, doc, traced = traced_sweep
        answered = 0
        for label, record in traced.items():
            for trace in record["traces"]:
                if trace["outcome"] not in ("completed", "shed"):
                    continue
                answered += 1
                stages = [
                    s for s in trace["spans"] if s["kind"] == "stage"
                ]
                assert stages, (label, trace["trace_id"])
                assert (
                    sum(s["end"] - s["start"] for s in stages)
                    == trace["latency"]
                ), (label, trace["trace_id"])
        assert answered > 0

    def test_outcomes_agree_with_the_point_counters(self, traced_sweep):
        scenario, doc, traced = traced_sweep
        for label, point in zip(traced, doc["points"]):
            outcomes: dict = {}
            for trace in traced[label]["traces"]:
                outcomes[trace["outcome"]] = outcomes.get(trace["outcome"], 0) + 1
            assert outcomes.get("completed", 0) == point["completed"]
            assert outcomes.get("shed", 0) == point["shed"]
            assert outcomes.get("rejected", 0) == point["rejected"]

    def test_chaos_sweep_records_the_fault_timeline(self):
        _, traced = run_traced_scenario("chaos-quick", seed=0)
        assert any(
            record["fault_timeline"]["windows"] for record in traced.values()
        )


class TestTracingIsObservational:
    def test_traced_document_is_byte_identical_to_untraced(self, traced_sweep):
        scenario, doc, _ = traced_sweep
        untraced = run_scenario(scenario, seed=0)
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            untraced, sort_keys=True
        )


class TestExplain:
    def test_same_seed_explains_the_same_request_identically(self):
        first = explain_point("quick", seed=0)
        second = explain_point("quick", seed=0)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_exemplar_is_the_worst_of_the_p99_bucket(self):
        doc = explain_point("quick", seed=0)
        assert doc["schema"] == "repro.explain/1"
        path = doc["critical_path"]
        assert path["trace_id"] == doc["exemplar"]["trace_id"]
        # The critical path's stages attribute all of the latency.
        assert (
            sum(stage["cycles"] for stage in path["stages"])
            == path["latency"]
        )
        assert doc["exemplar"]["value"] == path["latency"]

    def test_defaults_pick_coro_at_the_top_load(self):
        doc = explain_point("quick", seed=0)
        assert doc["technique"] == "CORO"
        assert doc["load_multiplier"] == max(get_scenario("quick").loads)

    def test_unswept_technique_and_load_are_usage_errors(self):
        with pytest.raises(WorkloadError):
            explain_point("quick", technique="AMAC")
        with pytest.raises(WorkloadError):
            explain_point("quick", load=7.0)

    def test_chaos_explain_carries_the_fault_profile(self):
        doc = explain_point("chaos-quick", seed=0, q=99)
        assert doc["fault_profile"] == "chaos-quick"
        assert trace_errors_free(doc)


def trace_errors_free(doc: dict) -> bool:
    """The rendered critical path is internally consistent."""
    path = doc["critical_path"]
    if not path["stages"]:
        return path["latency"] == 0
    return (
        path["stages"][0]["start"] == path["arrival"]
        and path["stages"][-1]["end"] == path["end"]
    )
