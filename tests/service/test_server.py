"""Tests for the serving event loop: decomposition, determinism, overload."""

import dataclasses

import numpy as np
import pytest

from repro.config import scaled
from repro.service.arrivals import PoissonArrivals, make_arrivals
from repro.service.loadgen import sequential_capacity
from repro.service.server import ServiceConfig, ServiceServer, percentile
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.generators import make_table

ARCH = scaled(64)
TABLE_BYTES = 1 << 20
N_REQUESTS = 60
SEED = 0

BASE_CONFIG = ServiceConfig(
    max_batch=8,
    max_wait_cycles=2_000,
    queue_capacity=16,
    n_shards=2,
    warmup_requests=8,
    slo_cycles=20_000,
)


@pytest.fixture(scope="module")
def table():
    allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
    return make_table(allocator, "svc/dict", TABLE_BYTES)


@pytest.fixture(scope="module")
def values(table):
    rng = np.random.RandomState(SEED + 11)
    return [int(v) for v in rng.randint(0, table.size, N_REQUESTS)]


def run_once(table, values, config=BASE_CONFIG, rate=0.8, seed=SEED):
    arrivals = PoissonArrivals(rate, len(values), seed)
    server = ServiceServer(table, config, arch=ARCH, seed=seed)
    return server.serve(arrivals, values)


class TestLatencyDecomposition:
    def test_invariant_holds_for_every_completed_request(self, table, values):
        report = run_once(table, values)
        done = [r for r in report.requests if r.outcome == "completed"]
        assert done, "nothing completed — the test set-up is broken"
        for request in done:
            assert (
                request.queue_wait
                + request.batch_wait
                + request.execution_cycles
                == request.latency
            ), request.index
            assert request.queue_wait >= 0
            assert request.batch_wait >= 0
            assert request.execution_cycles > 0

    def test_batch_wait_is_bounded_by_the_coalescer_deadline(
        self, table, values
    ):
        report = run_once(table, values, rate=0.3)  # mostly deadline-formed
        for request in report.requests:
            if request.outcome == "completed":
                assert request.batch_wait <= BASE_CONFIG.max_wait_cycles

    def test_histograms_cover_every_completed_request(self, table, values):
        report = run_once(table, values)
        latency = report.metrics.snapshot()["service"]["latency"]
        for phase in ("e2e", "queue_wait", "batch_wait", "execution"):
            assert latency[phase]["count"] == report.completed, phase


class TestDeterminism:
    def test_same_seed_runs_are_bit_identical(self, table, values):
        first = run_once(table, values)
        second = run_once(table, values)
        # The full metrics tree — including every latency histogram
        # bucket — must match exactly, not just summary statistics.
        assert first.metrics.snapshot() == second.metrics.snapshot()
        assert first.latencies == second.latencies
        assert first.makespan == second.makespan

    def test_different_seed_changes_the_arrival_pattern(self, table, values):
        first = run_once(table, values, seed=0)
        second = run_once(table, values, seed=1)
        assert first.latencies != second.latencies


class TestOverload:
    def test_queue_bounded_and_refusals_exported_at_2x_capacity(
        self, table, values
    ):
        capacity, _ = sequential_capacity(
            table, ARCH, n_shards=BASE_CONFIG.n_shards, seed=SEED
        )
        config = dataclasses.replace(
            BASE_CONFIG, technique="sequential", group_size=1
        )
        report = run_once(table, values, config=config, rate=2 * capacity)
        tree = report.metrics.snapshot()["service"]
        # The bounded-queue witness: the gauge's peak never passed Q.
        assert report.peak_queue_depth <= config.queue_capacity
        assert tree["queue_depth"]["peak"] <= config.queue_capacity
        # Overload actually bit, and every refusal is in the metrics.
        assert tree["rejected"] > 0
        assert tree["admitted"] + tree["rejected"] == tree["arrivals"]
        assert tree["arrivals"] == N_REQUESTS

    def test_shed_policy_serves_overflow_on_the_sequential_lane(
        self, table, values
    ):
        capacity, _ = sequential_capacity(
            table, ARCH, n_shards=BASE_CONFIG.n_shards, seed=SEED
        )
        config = dataclasses.replace(BASE_CONFIG, overload_policy="shed")
        report = run_once(table, values, config=config, rate=3 * capacity)
        tree = report.metrics.snapshot()["service"]
        assert tree["shed"] > 0
        shed = [r for r in report.requests if r.outcome == "shed"]
        assert all(r.finished for r in shed)  # shed != dropped: all served
        assert report.served == report.completed + len(shed)
        assert tree["latency"]["shed_e2e"]["count"] == len(shed)


class TestClosedLoopIntegration:
    def test_closed_loop_drains_to_exactly_n_requests(self, table, values):
        arrivals = make_arrivals(
            "closed", N_REQUESTS, SEED, n_clients=6, think_cycles=4_000
        )
        server = ServiceServer(table, BASE_CONFIG, arch=ARCH, seed=SEED)
        report = server.serve(arrivals, values)
        tree = report.metrics.snapshot()["service"]
        assert tree["arrivals"] == N_REQUESTS  # no stall, no over-issue
        assert report.completed + tree["rejected"] == N_REQUESTS


class TestReportAndPercentiles:
    def test_nearest_rank_percentiles(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile([7], 99) == 7
        assert percentile([], 50) == 0

    def test_percentile_rejects_out_of_range_q(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            percentile([1, 2], 0)
        with pytest.raises(SimulationError):
            percentile([1, 2], 101)

    def test_report_surfaces_are_consistent(self, table, values):
        report = run_once(table, values)
        pct = report.latency_percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]
        decomposition = report.mean_decomposition()
        assert pytest.approx(sum(decomposition.values())) == (
            sum(report.latencies) / len(report.latencies)
        )
        assert 0.0 <= report.slo_attainment <= 1.0
        assert report.throughput_per_kcycle > 0
        assert report.mean_batch_size() >= 1.0

    def test_config_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServiceConfig(n_shards=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(warmup_requests=-1)


class TestPlanRequests:
    def test_plan_kind_is_cycle_identical_to_lookup_kind(self, table, values):
        lookup = run_once(table, values)
        plan_config = dataclasses.replace(BASE_CONFIG, request_kind="plan")
        plan = run_once(table, values, config=plan_config)
        # The streaming plan charges the same probe events inside the
        # same settle window as the bulk lookup path, so per-request
        # latencies — not just aggregates — must coincide.
        assert plan.completed == lookup.completed
        assert plan.latencies == lookup.latencies
        assert plan.makespan == lookup.makespan

    def test_plan_kind_completes_under_load(self, table, values):
        config = dataclasses.replace(BASE_CONFIG, request_kind="plan")
        report = run_once(table, values, config=config)
        done = [r for r in report.requests if r.outcome == "completed"]
        assert done
        for request in done:
            assert request.execution_cycles > 0

    def test_unknown_request_kind_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="request kind"):
            ServiceConfig(request_kind="rpc")

    def test_plans_scenario_registered(self):
        from repro.service.scenarios import get_scenario

        scenario = get_scenario("plans")
        assert scenario.config.request_kind == "plan"
