"""Tests for the TPC-DS Q8-style workload synthesizer."""

import pytest

from repro.config import HASWELL
from repro.errors import WorkloadError
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.tpcds import Q8_PREDICATE_COUNT, make_q8_workload


class TestQ8Workload:
    def test_default_shape(self):
        workload = make_q8_workload(AddressSpaceAllocator(), n_rows=2_000)
        assert len(workload.predicates) == Q8_PREDICATE_COUNT
        assert workload.table.n_rows == 2_000
        assert all(0 <= z < 100_000 for z in workload.predicates)

    def test_deterministic(self):
        a = make_q8_workload(AddressSpaceAllocator(), n_rows=500, seed=7)
        b = make_q8_workload(AddressSpaceAllocator(), n_rows=500, seed=7)
        assert a.predicates == b.predicates
        assert a.expected_matches == b.expected_matches

    def test_expected_matches_agree_with_query(self):
        workload = make_q8_workload(
            AddressSpaceAllocator(), n_rows=1_500, n_predicates=50, seed=3
        )
        results = workload.table.query_in(
            ExecutionEngine(HASWELL), "ca_zip", workload.predicates,
            strategy="interleaved",
        )
        n_found = sum(r.rows.size for r in results.values())
        assert n_found == workload.expected_matches

    def test_zero_overlap_matches_nothing(self):
        workload = make_q8_workload(
            AddressSpaceAllocator(), n_rows=300, n_predicates=20, overlap=0.0
        )
        assert workload.expected_matches == 0

    def test_full_overlap_predicates_all_present(self):
        workload = make_q8_workload(
            AddressSpaceAllocator(), n_rows=3_000, n_predicates=30, overlap=1.0
        )
        assert workload.expected_matches >= 30  # every predicate hits >= 1 row

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            make_q8_workload(AddressSpaceAllocator(), n_rows=0)
        with pytest.raises(WorkloadError):
            make_q8_workload(AddressSpaceAllocator(), n_rows=10, overlap=1.5)
