"""Tests for workload generators and the string codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.generators import (
    GB,
    MB,
    PAPER_SIZE_GRID,
    QUICK_SIZE_GRID,
    lookup_indices,
    lookup_values,
    make_table,
    sorted_lookup_values,
)
from repro.workloads.strings import (
    KEY_WIDTH,
    common_prefix_length,
    index_to_key,
    key_to_index,
)


class TestStringCodec:
    def test_roundtrip(self):
        for index in (0, 1, 999, 10**14):
            assert key_to_index(index_to_key(index)) == index

    def test_fixed_width(self):
        assert len(index_to_key(0)) == KEY_WIDTH
        assert len(index_to_key(10**14)) == KEY_WIDTH

    def test_order_preserving(self):
        keys = [index_to_key(i) for i in (0, 5, 50, 500, 10**10)]
        assert keys == sorted(keys)

    def test_out_of_range(self):
        with pytest.raises(WorkloadError):
            index_to_key(-1)
        with pytest.raises(WorkloadError):
            index_to_key(10**15)

    def test_bad_key_rejected(self):
        with pytest.raises(WorkloadError):
            key_to_index(b"short")
        with pytest.raises(WorkloadError):
            key_to_index(b"abcdefghijklmno")

    def test_common_prefix(self):
        assert common_prefix_length(b"abc", b"abd") == 2
        assert common_prefix_length(b"abc", b"abc") == 3
        assert common_prefix_length(b"x", b"y") == 0

    @given(a=st.integers(0, 10**15 - 1), b=st.integers(0, 10**15 - 1))
    @settings(max_examples=60, deadline=None)
    def test_order_preservation_property(self, a, b):
        assert (a < b) == (index_to_key(a) < index_to_key(b))


class TestGrids:
    def test_paper_grid_spans_1mb_to_2gb(self):
        assert PAPER_SIZE_GRID[0] == MB
        assert PAPER_SIZE_GRID[-1] == 2 * GB
        assert len(PAPER_SIZE_GRID) == 12
        assert all(b == 2 * a for a, b in zip(PAPER_SIZE_GRID, PAPER_SIZE_GRID[1:]))

    def test_quick_grid_brackets_llc(self):
        assert any(size < 25 * MB for size in QUICK_SIZE_GRID)
        assert any(size > 25 * MB for size in QUICK_SIZE_GRID)


class TestTables:
    def test_int_table(self):
        table = make_table(AddressSpaceAllocator(), "t", MB)
        assert table.size == MB // 4
        assert table.value_at(100) == 100

    def test_string_table(self):
        table = make_table(AddressSpaceAllocator(), "t", MB, "string")
        assert table.size == MB // 16
        assert table.value_at(3) == index_to_key(3)

    def test_unknown_element(self):
        with pytest.raises(WorkloadError):
            make_table(AddressSpaceAllocator(), "t", MB, "float")


class TestLookups:
    def test_deterministic_seed(self):
        a = lookup_indices(100, 1000, seed=0)
        b = lookup_indices(100, 1000, seed=0)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = lookup_indices(100, 10_000, seed=0)
        b = lookup_indices(100, 10_000, seed=1)
        assert not np.array_equal(a, b)

    def test_values_are_in_domain(self):
        table = make_table(AddressSpaceAllocator(), "t", MB)
        values = lookup_values(500, table)
        assert all(0 <= v < table.size for v in values)

    def test_string_values_are_keys(self):
        table = make_table(AddressSpaceAllocator(), "t", MB, "string")
        values = lookup_values(10, table, element="string")
        assert all(isinstance(v, bytes) and len(v) == KEY_WIDTH for v in values)

    def test_sorted_variant_is_sorted_same_multiset(self):
        table = make_table(AddressSpaceAllocator(), "t", MB)
        plain = lookup_values(200, table, seed=3)
        sorted_list = sorted_lookup_values(200, table, seed=3)
        assert sorted_list == sorted(plain)

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            lookup_indices(0, 10)
        with pytest.raises(WorkloadError):
            lookup_indices(10, 0)
