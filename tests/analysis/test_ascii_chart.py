"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.reporting import ascii_chart


class TestAsciiChart:
    def test_markers_and_legend(self):
        text = ascii_chart(["a", "b"], {"X": [1, 2], "Y": [2, 1]})
        assert "*=X" in text and "o=Y" in text
        assert "*" in text and "o" in text

    def test_title(self):
        text = ascii_chart(["a"], {"X": [1]}, title="T9")
        assert text.splitlines()[0] == "T9"

    def test_peak_on_axis(self):
        text = ascii_chart(["a", "b"], {"X": [10, 250]})
        assert "250" in text

    def test_height_respected(self):
        text = ascii_chart(["a"], {"X": [5]}, height=6)
        plot_rows = [line for line in text.splitlines() if "|" in line]
        assert len(plot_rows) == 6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(["a", "b"], {"X": [1]})

    def test_empty_series(self):
        assert ascii_chart(["a"], {}, title="empty") == "empty"

    def test_zero_values_render(self):
        text = ascii_chart(["a"], {"X": [0.0]})
        assert "|" in text  # renders without dividing by zero

    def test_max_value_hits_top_row(self):
        text = ascii_chart(["a", "b"], {"X": [1, 100]}, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        assert "*" in rows[0]  # peak at the top
        assert "*" in rows[-1]  # small value at the bottom
