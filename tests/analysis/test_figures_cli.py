"""Tests for the CLI and the figure-regeneration entry points."""

import pytest

from repro.__main__ import main
from repro.analysis.figures import available_experiments, run_experiment


class TestRegistry:
    def test_every_paper_artifact_listed(self):
        names = available_experiments()
        for expected in (
            "fig1", "fig3a", "fig3b", "fig5", "fig6", "fig7", "fig8",
            "table1", "table2", "table5",
        ):
            assert expected in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    def test_table5_runs_instantly(self):
        text = run_experiment("table5")
        assert "CORO-U" in text and "footprint" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table5" in out

    def test_run_experiment(self, capsys):
        assert main(["table5"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_exits_nonzero(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_multiple_experiments(self, capsys):
        assert main(["table5", "table5"]) == 0
        assert capsys.readouterr().out.count("Table 5") == 2
