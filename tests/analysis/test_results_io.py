"""Tests for CSV persistence of sweep results."""

import pytest

from repro.analysis.experiments import measure_binary_search, measure_query
from repro.analysis.results_io import (
    binary_search_csv,
    query_csv,
    read_csv_rows,
    write_csv,
)
from repro.errors import ReproError


@pytest.fixture(scope="module")
def bs_points():
    return [
        measure_binary_search(1 << 20, technique, n_lookups=40)
        for technique in ("Baseline", "CORO")
    ]


@pytest.fixture(scope="module")
def query_points():
    return [
        measure_query(1 << 20, "main", strategy, n_predicates=50, n_rows=5_000)
        for strategy in ("sequential", "interleaved")
    ]


class TestBinarySearchCsv:
    def test_header_and_rows(self, bs_points):
        text = binary_search_csv(bs_points)
        lines = text.strip().splitlines()
        assert lines[0].startswith("technique,element,size_bytes")
        assert len(lines) == 3
        assert lines[1].startswith("Baseline,int,1048576")

    def test_roundtrip_via_file(self, tmp_path, bs_points):
        path = write_csv(tmp_path / "sub" / "sweep.csv", binary_search_csv(bs_points))
        rows = read_csv_rows(path)
        assert len(rows) == 2
        assert rows[1]["technique"] == "CORO"
        assert float(rows[0]["cycles_per_search"]) > 0
        assert abs(sum(float(rows[0][k]) for k in rows[0] if k.startswith("slots_")) - 1.0) < 1e-2

    def test_loads_columns_present(self, bs_points):
        rows = read_csv_rows(
            write_csv("/tmp/repro_test_sweep.csv", binary_search_csv(bs_points))
        )
        for level in ("L1", "LFB", "L2", "L3", "DRAM"):
            assert f"loads_{level}" in rows[0]


class TestQueryCsv:
    def test_rows(self, query_points):
        text = query_csv(query_points)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert "sequential" in lines[1]
        assert "interleaved" in lines[2]

    def test_fractions_parse(self, tmp_path, query_points):
        path = write_csv(tmp_path / "q.csv", query_csv(query_points))
        rows = read_csv_rows(path)
        for row in rows:
            assert 0.0 < float(row["locate_fraction"]) < 1.0


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            read_csv_rows(tmp_path / "nope.csv")
