"""Tests for the measurement harness (uses small sizes to stay fast)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    DEFAULT_GROUP_SIZES,
    TECHNIQUES,
    bench_scale,
    lookups_per_point,
    measure_binary_search,
    measure_query,
    size_grid,
    warm_llc_resident,
)
from repro.config import HASWELL
from repro.errors import WorkloadError
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.memory import MemorySystem

MB = 1 << 20


class TestScaleSelection:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "quick"
        assert len(size_grid()) == 6
        assert lookups_per_point() == 400

    def test_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale() == "full"
        assert len(size_grid()) == 12
        assert lookups_per_point() == 10_000

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(WorkloadError):
            bench_scale()


class TestWarmLlc:
    def test_small_region_installed(self):
        memory = MemorySystem(HASWELL)
        alloc = AddressSpaceAllocator()
        region = alloc.allocate("r", 1 * MB)
        warm_llc_resident(memory, [region])
        assert memory.l3.contains(region.base // 64)
        assert memory.l3.contains((region.end - 1) // 64)

    def test_oversized_region_skipped(self):
        memory = MemorySystem(HASWELL)
        alloc = AddressSpaceAllocator()
        region = alloc.allocate("r", 64 * MB)
        warm_llc_resident(memory, [region])
        assert memory.l3.resident_lines == 0


class TestMeasureBinarySearch:
    def test_point_fields(self):
        point = measure_binary_search(1 * MB, "CORO", n_lookups=50)
        assert point.technique == "CORO"
        assert point.group_size == DEFAULT_GROUP_SIZES["CORO"]
        assert point.cycles_per_search > 0
        assert point.tmam.cycles > 0
        assert abs(sum(point.tmam.breakdown().values()) - 1.0) < 1e-9
        assert all(v >= 0 for v in point.loads_per_search.values())

    def test_unknown_technique(self):
        with pytest.raises(WorkloadError):
            measure_binary_search(1 * MB, "SPP", n_lookups=10)

    def test_deterministic(self):
        a = measure_binary_search(1 * MB, "GP", n_lookups=60)
        b = measure_binary_search(1 * MB, "GP", n_lookups=60)
        assert a.cycles_per_search == b.cycles_per_search

    def test_sorted_lookups_speed_up_repeated_queries(self):
        """Figure 4: sorting the lookup list increases temporal locality.

        The gain is about reuse distance under the paper's repetition
        methodology: warm with the same values and run enough lookups
        that the unsorted paths overflow the LLC (a scaled hierarchy
        recreates the capacity relationship at test size).
        """
        from repro.config import scaled

        arch = scaled(64)  # L3 = 400 KB
        common = dict(n_lookups=500, arch=arch, warm_with_same_values=True)
        unsorted = measure_binary_search(32 * MB, "Baseline", **common)
        sorted_ = measure_binary_search(
            32 * MB, "Baseline", sort_lookups=True, **common
        )
        assert sorted_.cycles_per_search < 0.8 * unsorted.cycles_per_search

    def test_string_element_slower_than_int(self):
        int_point = measure_binary_search(4 * MB, "Baseline", n_lookups=100)
        str_point = measure_binary_search(
            4 * MB, "Baseline", element="string", n_lookups=100
        )
        assert str_point.cycles_per_search > int_point.cycles_per_search

    def test_all_techniques_run(self):
        for technique in TECHNIQUES:
            point = measure_binary_search(1 * MB, technique, n_lookups=30)
            assert point.cycles_per_search > 0


class TestMeasureQuery:
    def test_main_point(self):
        point = measure_query(
            1 * MB, "main", "sequential", n_predicates=100, n_rows=10_000
        )
        assert point.total_cycles == (
            point.locate_cycles + point.scan_cycles
        ) + (point.total_cycles - point.locate_cycles - point.scan_cycles)
        assert 0 < point.locate_fraction < 1
        assert point.response_ms > 0

    def test_delta_point(self):
        point = measure_query(
            1 * MB, "delta", "interleaved", n_predicates=100, n_rows=10_000
        )
        assert point.store == "delta"
        assert point.locate_cycles > 0

    def test_unknown_store(self):
        with pytest.raises(WorkloadError):
            measure_query(1 * MB, "warm", "sequential", n_predicates=10, n_rows=100)

    def test_interleaving_beats_sequential_beyond_llc(self):
        seq = measure_query(
            64 * MB, "main", "sequential", n_predicates=300, n_rows=10_000
        )
        inter = measure_query(
            64 * MB, "main", "interleaved", n_predicates=300, n_rows=10_000
        )
        assert inter.locate_cycles < seq.locate_cycles
