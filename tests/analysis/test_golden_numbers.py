"""Golden-number regression: cycles/search pinned across refactors.

These values were captured from the measurement harness at one fixed
sweep point (16 MB implicit int array, 64 lookups, seed 0, default
group sizes) *before* the executor-registry refactor. Every technique's
count must stay bit-identical: executors are adapters over the original
bulk entry points and may not charge a single extra cycle. If a change
legitimately alters the cost model, recapture these numbers in the same
commit and say why.
"""

import pytest

from repro.analysis.experiments import measure_binary_search

GOLDEN_CYCLES_PER_SEARCH = {
    "std": 856.765625,
    "Baseline": 978.515625,
    "GP": 767.609375,
    "AMAC": 1236.5625,
    "CORO": 1214.71875,
}

SIZE_BYTES = 16 << 20
N_LOOKUPS = 64


class TestGoldenNumbers:
    @pytest.mark.parametrize("technique", sorted(GOLDEN_CYCLES_PER_SEARCH))
    def test_cycles_per_search_bit_identical(self, technique):
        point = measure_binary_search(
            SIZE_BYTES, technique, n_lookups=N_LOOKUPS
        )
        assert point.cycles_per_search == GOLDEN_CYCLES_PER_SEARCH[technique]
