"""Tests for reporting helpers and the Table 5 LoC analysis."""

import pytest

from repro.analysis.loc import code_lines, diff_lines, table5_metrics
from repro.analysis.reporting import (
    banner,
    format_pct,
    format_size,
    format_table,
    series_table,
)


class TestFormatting:
    def test_format_size(self):
        assert format_size(1 << 20) == "1MB"
        assert format_size(2 << 30) == "2GB"
        assert format_size(512) == "512B"
        assert format_size(1536) == "1.5KB"

    def test_format_pct(self):
        assert format_pct(0.214) == "21.4%"

    def test_format_table_alignment(self):
        text = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "333" in lines[3]

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.startswith("Table 9")

    def test_series_table(self):
        text = series_table("size", ["1MB", "2MB"], {"A": [1, 2], "B": [3, 4]})
        assert "1MB" in text and "B" in text

    def test_banner(self):
        assert "hello" in banner("hello")


class TestCodeLines:
    def test_strips_docstrings_comments_blanks(self):
        def sample():
            """Docstring line.

            More docstring.
            """
            x = 1  # trailing comment counts as code line
            # pure comment
            return x

        lines = code_lines(sample)
        assert lines == ["def sample():", "x = 1  # trailing comment counts as code line", "return x"]

    def test_diff_identical_is_zero(self):
        def f():
            return 1

        assert diff_lines(f, f) == 0

    def test_diff_counts_new_lines(self):
        def original():
            x = 1
            return x

        def variant():
            x = 1
            y = 2
            return x + y

        # 'def variant():' header, 'y = 2' and changed return.
        assert diff_lines(original, variant) == 3


class TestTable5:
    def test_paper_ordering_holds(self):
        metrics = {m.technique: m for m in table5_metrics()}
        assert set(metrics) == {"GP", "AMAC", "CORO-U", "CORO-S"}
        # CORO-U differs least from the original and has the smallest
        # footprint; AMAC differs most (Table 5's takeaways).
        assert metrics["CORO-U"].diff_to_original < metrics["GP"].diff_to_original
        assert metrics["CORO-U"].diff_to_original < metrics["AMAC"].diff_to_original
        assert metrics["CORO-U"].total_footprint == min(
            m.total_footprint for m in metrics.values()
        )
        assert metrics["AMAC"].diff_to_original == max(
            m.diff_to_original for m in metrics.values()
        )

    def test_unified_footprint_is_single_codepath(self):
        metrics = {m.technique: m for m in table5_metrics()}
        assert metrics["CORO-U"].total_footprint == metrics["CORO-U"].interleaved_loc

    def test_metrics_positive(self):
        for m in table5_metrics():
            assert m.interleaved_loc > 0
            assert m.diff_to_original > 0
            assert m.total_footprint >= m.interleaved_loc
