"""Tests for the adaptive control plane (``repro.control``).

Three invariants anchor everything else:

* **off means off** — a run without a controller is byte-identical to
  the pre-control code path, pinned against golden documents recorded
  from the uncontrolled implementation;
* **determinism** — same scenario, same seed, same ``control.window``
  stream, bit for bit;
* **honest bookkeeping** — windows tile ``[0, makespan)`` contiguously
  from cycle 0, every record speaks the exported signal/actuator
  vocabulary, and ``decisions`` counts exactly the windows that acted.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.cluster import run_cluster_scenario
from repro.control import (
    ACTION_NAMES,
    CONTROL_EVENT,
    CONTROL_SCHEMA,
    SIGNAL_NAMES,
    AdaptiveController,
    ControllerConfig,
)
from repro.errors import ConfigurationError
from repro.service import get_scenario, run_scenario

DATA = pathlib.Path(__file__).parent.parent / "data"


class TestControllerConfig:
    def test_defaults_round_trip_to_dict(self):
        config = ControllerConfig()
        echo = config.to_dict()
        assert echo["window_cycles"] == config.window_cycles
        assert echo["techniques"] == []
        assert set(echo) == {
            "window_cycles",
            "techniques",
            "slo_fraction_high",
            "slo_fraction_low",
            "queue_high",
            "idle_arrivals",
            "min_wait_cycles",
            "resize_groups",
            "consolidate_shards",
            "manage_overflow",
        }

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="window"):
            ControllerConfig(window_cycles=0)
        with pytest.raises(ConfigurationError, match="SLO fractions"):
            ControllerConfig(slo_fraction_low=0.9, slo_fraction_high=0.5)
        with pytest.raises(ConfigurationError, match="SLO fractions"):
            ControllerConfig(slo_fraction_low=0.0)
        with pytest.raises(ConfigurationError, match="queue_high"):
            ControllerConfig(queue_high=0)
        with pytest.raises(ConfigurationError, match="min_wait_cycles"):
            ControllerConfig(min_wait_cycles=0)

    def test_techniques_coerced_to_tuple(self):
        config = ControllerConfig(techniques=["sequential", "CORO"])
        assert config.techniques == ("sequential", "CORO")


class TestControllerOffBitIdentity:
    """A server without a controller replays the pre-control goldens."""

    @pytest.mark.parametrize(
        "scenario, golden, runner",
        [
            ("quick", "golden_quick_seed0.json", run_scenario),
            ("chaos-quick", "golden_chaos_quick_seed0.json", run_scenario),
            (
                "planet-quick",
                "golden_planet_quick_seed0.json",
                run_cluster_scenario,
            ),
        ],
    )
    def test_controller_off_matches_golden(self, scenario, golden, runner):
        doc = runner(scenario, seed=0)
        recorded = json.loads((DATA / golden).read_text())
        assert doc == recorded
        assert "base_schema" not in doc
        assert "controller" not in doc
        assert all("control" not in point for point in doc["points"])


@pytest.fixture(scope="module")
def controlled_doc():
    return run_scenario("controller-quick", seed=0)


class TestControlledDocument:
    def test_schema_and_controller_echo(self, controlled_doc):
        scenario = get_scenario("controller-quick")
        assert controlled_doc["schema"] == CONTROL_SCHEMA
        assert controlled_doc["base_schema"] == "repro.service/1"
        assert (
            controlled_doc["controller"]
            == scenario.config.controller.to_dict()
        )

    def test_windows_tile_the_makespan(self, controlled_doc):
        for point in controlled_doc["points"]:
            control = point["control"]
            width = control["window_cycles"]
            windows = control["windows"]
            assert windows, "controller rolled no windows"
            for position, window in enumerate(windows):
                assert window["event"] == CONTROL_EVENT
                assert window["window"] == position
                assert window["start"] == position * width
                assert window["end"] == window["start"] + width
                assert window["cycle"] == window["end"]
            assert windows[-1]["end"] >= point["makespan"]
            assert windows[-1]["start"] < point["makespan"]

    def test_records_speak_the_exported_vocabulary(self, controlled_doc):
        for point in controlled_doc["points"]:
            control = point["control"]
            decided = 0
            for window in control["windows"]:
                assert set(window["signals"]) == set(SIGNAL_NAMES)
                assert set(window["actions"]) <= set(ACTION_NAMES)
                assert window["reason"]
                if window["actions"]:
                    decided += 1
            assert control["decisions"] == decided

    def test_controller_actually_decided(self, controlled_doc):
        assert any(
            point["control"]["decisions"] > 0
            for point in controlled_doc["points"]
        )

    def test_same_seed_same_decision_stream(self, controlled_doc):
        replay = run_scenario("controller-quick", seed=0)
        assert replay == controlled_doc

    def test_chaos_base_schema(self):
        doc = run_scenario("phase-shift", seed=0)
        assert doc["schema"] == CONTROL_SCHEMA
        assert doc["base_schema"] == "repro.chaos/1"
        assert all(point["control"]["decisions"] > 0 for point in doc["points"])


class TestClusterControl:
    def test_cluster_base_schema_and_stream(self):
        scenario = get_scenario("planet-quick")
        config = dataclasses.replace(
            scenario.config,
            controller=ControllerConfig(window_cycles=8_000),
        )
        doc = run_cluster_scenario(
            dataclasses.replace(scenario, config=config), seed=0
        )
        assert doc["schema"] == CONTROL_SCHEMA
        assert doc["base_schema"] == "repro.cluster/1"
        for point in doc["points"]:
            assert point["control"]["windows"]


class TestUnitWindowing:
    """The controller's window accounting, off the serving stack."""

    class _Server:
        """Duck-typed actuation surface: just enough for signals."""

        def __init__(self):
            from repro.obs.metrics import MetricsRegistry

            self.shards = []
            self._injector = None
            self.executor = type(
                "E", (), {"name": "sequential", "switch_kind": None}
            )()
            self.group_size = 1
            self.metrics = MetricsRegistry()
            self.admission = type("Q", (), {"queue": []})()
            self.config = type("C", (), {"slo_cycles": None, "max_wait_cycles": 100})()
            self.coalescer = type("W", (), {"max_wait_cycles": 100})()
            self._consolidate_ok = False
            self._overflow_armed = False

    def test_roll_to_rolls_every_elapsed_window(self):
        controller = AdaptiveController(ControllerConfig(window_cycles=100))
        server = self._Server()
        controller.on_arrival(10)
        controller.on_answer(150, latency=40)
        controller.roll_to(350, server)
        assert [w["window"] for w in controller.events] == [0, 1, 2]
        assert controller.events[0]["signals"]["arrivals"] == 1
        assert controller.events[1]["signals"]["completed"] == 1

    def test_finish_flushes_trailing_windows(self):
        controller = AdaptiveController(ControllerConfig(window_cycles=100))
        server = self._Server()
        controller.roll_to(100, server)
        controller.finish(425, server)
        assert [w["end"] for w in controller.events] == [100, 200, 300, 400, 500]

    def test_next_boundary_advances(self):
        controller = AdaptiveController(ControllerConfig(window_cycles=50))
        server = self._Server()
        assert controller.next_boundary() == 50
        controller.roll_to(50, server)
        assert controller.next_boundary() == 100
