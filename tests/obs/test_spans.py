"""Tests for the span tracer: recorder semantics and the golden schedule.

The golden-file test pins the exact span sequence a 2-lookup interleaved
run produces — the contract the Chrome-trace exporter and any timeline
tooling rely on.
"""

from repro.config import HASWELL
from repro.interleaving import run_interleaved
from repro.obs.spans import (
    NULL_RECORDER,
    SPAN_KINDS,
    NullRecorder,
    Span,
    SpanRecorder,
)
from repro.sim import SUSPEND, Compute, ExecutionEngine


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.declare_track(0, "x")
        NULL_RECORDER.set_track(3)
        NULL_RECORDER.span("compute", 0, 5)
        NULL_RECORDER.instant("suspend", 5)
        NULL_RECORDER.counter("lfb", 0, 1)

    def test_wrap_stream_is_identity(self):
        stream = iter([1, 2])
        assert NullRecorder().wrap_stream(stream) is stream

    def test_engine_defaults_to_null_recorder(self):
        assert ExecutionEngine(HASWELL).tracer is NULL_RECORDER


class TestSpanRecorder:
    def test_set_track_auto_declares(self):
        rec = SpanRecorder()
        rec.set_track(4)
        assert rec.tracks[4] == "frame 4"
        rec.declare_track(5, "amac state 5")
        assert rec.tracks[5] == "amac state 5"

    def test_spans_attributed_to_current_track(self):
        rec = SpanRecorder()
        rec.set_track(2)
        rec.span("compute", 0, 3)
        rec.instant("suspend", 3)
        assert [(s.kind, s.track, s.duration) for s in rec.spans] == [
            ("compute", 2, 3),
            ("suspend", 2, 0),
        ]

    def test_counter_elides_consecutive_duplicates(self):
        rec = SpanRecorder()
        for cycle, value in ((0, 1), (5, 1), (9, 2), (12, 1)):
            rec.counter("lfb_occupancy", cycle, value)
        assert rec.counters["lfb_occupancy"] == [(0, 1), (9, 2), (12, 1)]

    def test_summaries(self):
        rec = SpanRecorder()
        rec.span("compute", 0, 4)
        rec.span("compute", 4, 6)
        rec.span("stall", 6, 30)
        assert rec.spans_by_kind() == {"compute": 2, "stall": 1}
        assert rec.cycles_by_kind() == {"compute": 6, "stall": 24}

    def test_span_as_dict_drops_empty_fields(self):
        span = Span("stall", 1, 5, 9, name="load L3", attrs={"level": "L3"})
        assert span.as_dict() == {
            "kind": "stall",
            "track": 1,
            "start": 5,
            "end": 9,
            "name": "load L3",
            "attrs": {"level": "L3"},
        }
        assert Span("compute", 0, 0, 4).as_dict() == {
            "kind": "compute",
            "track": 0,
            "start": 0,
            "end": 4,
        }

    def test_all_kinds_in_vocabulary(self):
        for kind in ("lookup", "resume", "compute", "stall", "switch",
                     "alloc", "suspend", "event"):
            assert kind in SPAN_KINDS


def one_suspension_stream(value, interleave):
    def stream():
        yield Compute(1, 1)
        if interleave:
            yield SUSPEND
        yield Compute(1, 1)
        return value

    return stream()


class TestGoldenInterleavedTrace:
    """Pin the exact span sequence of a 2-lookup interleaved run."""

    def run_traced(self):
        recorder = SpanRecorder()
        engine = ExecutionEngine(HASWELL, tracer=recorder)
        results = run_interleaved(engine, one_suspension_stream, [7, 8], 2)
        assert results == [7, 8]
        return recorder

    def test_golden_span_sequence(self):
        recorder = self.run_traced()
        golden = [
            # Frame allocations for the two slots.
            ("compute", 0), ("alloc", 0),
            ("compute", 1), ("alloc", 1),
            # Round 1: each frame computes, prefetches, suspends.
            ("compute", 0), ("switch", 0), ("compute", 0),
            ("resume", 0), ("suspend", 0),
            ("compute", 1), ("switch", 1), ("compute", 1),
            ("resume", 1), ("suspend", 1),
            # Round 2: each frame finishes (no suspend marker).
            ("compute", 0), ("switch", 0), ("compute", 0), ("resume", 0),
            ("compute", 1), ("switch", 1), ("compute", 1), ("resume", 1),
        ]
        assert [(s.kind, s.track) for s in recorder.spans] == golden

    def test_resume_spans_name_their_lookup(self):
        recorder = self.run_traced()
        names = [s.name for s in recorder.spans if s.kind == "resume"]
        assert names == ["lookup 0", "lookup 1", "lookup 0", "lookup 1"]

    def test_spans_are_monotone_and_cover_the_run(self):
        recorder = self.run_traced()
        for span in recorder.spans:
            assert 0 <= span.start <= span.end
        for kind in ("compute", "resume", "switch"):
            starts = [s.start for s in recorder.spans if s.kind == kind]
            assert starts == sorted(starts)  # clock order within a kind
        resumes = [s for s in recorder.spans if s.kind == "resume"]
        # Resume spans tile the run: round-robin means frame 1's resume
        # starts exactly where frame 0's ended.
        for left, right in zip(resumes, resumes[1:]):
            assert right.start == left.end

    def test_tracks_labelled_as_frames(self):
        recorder = self.run_traced()
        assert recorder.tracks == {0: "frame 0", 1: "frame 1"}
