"""Tests for multi-window SLO burn-rate accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import burn_analysis


def events_over(horizon, n, *, bad_at=()):
    """``n`` evenly spread terminal events; indices in ``bad_at`` miss."""
    bad = set(bad_at)
    return [
        (i * horizon // n, i not in bad)
        for i in range(n)
    ]


class TestValidation:
    def test_rejects_target_outside_unit_interval(self):
        for target in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                burn_analysis([], makespan=100, slo_cycles=10, target=target)

    def test_rejects_non_positive_slo(self):
        with pytest.raises(ConfigurationError):
            burn_analysis([], makespan=100, slo_cycles=0)

    def test_rejects_inverted_windows(self):
        with pytest.raises(ConfigurationError):
            burn_analysis(
                [], makespan=100, slo_cycles=10, short_window=50, long_window=20
            )


class TestBurnArithmetic:
    def test_all_good_burns_nothing(self):
        out = burn_analysis(
            events_over(600, 60), makespan=600, slo_cycles=10, target=0.99
        )
        assert out["bad"] == 0
        assert out["overall_burn"] == 0.0
        assert out["attainment"] == 1.0
        assert out["max_burn_short"] == 0.0
        assert out["max_burn_long"] == 0.0
        assert out["alert_windows"] == 0
        assert all(v == 0.0 for v in out["budget_consumed"])

    def test_burn_is_miss_fraction_over_budget(self):
        # 5 bad out of 100 at 99% target: overall burn = 0.05 / 0.01.
        out = burn_analysis(
            events_over(1000, 100, bad_at=range(5)),
            makespan=1000,
            slo_cycles=10,
            target=0.99,
        )
        assert out["bad"] == 5
        assert out["overall_burn"] == pytest.approx(5.0)
        assert out["attainment"] == pytest.approx(0.95)
        assert out["budget"] == pytest.approx(0.01)

    def test_budget_consumed_is_monotone_and_ends_at_total_burn(self):
        out = burn_analysis(
            events_over(1200, 120, bad_at=(0, 1, 50, 51, 118)),
            makespan=1200,
            slo_cycles=10,
        )
        consumed = out["budget_consumed"]
        assert all(a <= b for a, b in zip(consumed, consumed[1:]))
        # The final entry is the whole run's bad share over its budget.
        assert consumed[-1] == pytest.approx(
            out["bad"] / (out["events"] * out["budget"]), abs=1e-6
        )

    def test_default_windows_are_deterministic_fractions_of_the_run(self):
        out = burn_analysis(
            events_over(6000, 60), makespan=6000, slo_cycles=10
        )
        assert out["long_window_cycles"] == -(-6001 // 6)
        assert out["short_window_cycles"] == -(-out["long_window_cycles"] // 5)
        assert len(out["burn_long"]) == 6
        assert len(out["budget_consumed"]) == len(out["burn_long"])

    def test_events_beyond_makespan_extend_the_horizon(self):
        # A straggler completing after the nominal makespan must still
        # be counted, not dropped or crashed on.
        out = burn_analysis(
            [(10, True), (5000, False)], makespan=100, slo_cycles=10
        )
        assert out["events"] == 2
        assert out["bad"] == 1


class TestMultiWindowAlerts:
    def test_alert_requires_both_windows_burning(self):
        # Window layout: long=100, short=20. All 10 bad events land in
        # cycles 0..19 — the first short window — so both the first long
        # window and a short window inside it burn > 1.
        events = [(i, False) for i in range(10)]
        events += [(200 + i, True) for i in range(40)]
        out = burn_analysis(
            events,
            makespan=595,
            slo_cycles=10,
            target=0.99,
            short_window=20,
            long_window=100,
        )
        assert out["alert_windows"] >= 1

    def test_no_alert_when_misses_are_diluted_across_short_windows(self):
        # One bad event per short window: each short window's burn is
        # 1/1/0.01 = 100 > 1... so to get burn <= 1 the short windows
        # need enough good events. Give each short window 1 bad in 200
        # events at a 50% target (budget 0.5): short burn = 0.005/0.5
        # = 0.01 <= 1, so the long window may burn but never alerts.
        events = []
        for window in range(5):
            base = window * 20
            events.append((base, False))
            events += [(base + 1 + (i % 19), True) for i in range(199)]
        out = burn_analysis(
            events,
            makespan=99,
            slo_cycles=10,
            target=0.5,
            short_window=20,
            long_window=100,
        )
        assert out["max_burn_short"] <= 1.0
        assert out["alert_windows"] == 0

    def test_empty_run_is_all_zeroes(self):
        out = burn_analysis([], makespan=0, slo_cycles=10)
        assert out["events"] == 0
        assert out["overall_burn"] == 0.0
        assert out["attainment"] == 1.0
        assert out["alert_windows"] == 0
