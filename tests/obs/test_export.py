"""Tests for the trace exporters: Chrome-trace schema, JSONL, artifacts."""

import json

from repro.obs.export import (
    CHROME_TRACE_SCHEMA,
    RUN_SUMMARY_SCHEMA,
    chrome_trace,
    run_summary,
    spans_jsonl,
    write_run_artifacts,
)
from repro.obs.spans import SpanRecorder


def sample_recorder() -> SpanRecorder:
    rec = SpanRecorder()
    rec.declare_track(0, "frame 0")
    rec.declare_track(1, "frame 1")
    rec.set_track(0)
    rec.span("resume", 0, 12, name="lookup 0")
    rec.span("stall", 2, 9, name="load L3", attrs={"level": "L3"})
    rec.instant("suspend", 12, name="lookup 0")
    rec.set_track(1)
    rec.span("resume", 12, 20, name="lookup 1")
    rec.counter("lfb_occupancy", 3, 2)
    rec.counter("lfb_occupancy", 9, 0)
    return rec


class TestChromeTrace:
    def trace(self):
        return chrome_trace({"CORO": sample_recorder()})

    def test_top_level_schema(self):
        doc = self.trace()
        assert doc["schema"] == CHROME_TRACE_SCHEMA
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["time_unit"] == "cycles"
        assert isinstance(doc["traceEvents"], list)
        json.dumps(doc)  # must be serialisable

    def test_metadata_names_processes_and_threads(self):
        events = self.trace()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": "CORO"}} in meta
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert thread_names == {0: "frame 0", 1: "frame 1"}

    def test_complete_events_carry_cycle_timestamps(self):
        events = self.trace()["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert all(
            {"name", "cat", "ts", "dur", "pid", "tid"} <= set(e) for e in complete
        )
        resume = [e for e in complete if e["cat"] == "resume"]
        assert [(e["ts"], e["dur"], e["tid"]) for e in resume] == [
            (0, 12, 0),
            (12, 8, 1),
        ]
        stall = next(e for e in complete if e["cat"] == "stall")
        assert stall["args"] == {"level": "L3"}

    def test_suspends_become_instants(self):
        events = self.trace()["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [(e["name"], e["ts"], e["s"]) for e in instants] == [
            ("lookup 0", 12, "t")
        ]

    def test_counter_samples(self):
        events = self.trace()["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["value"]) for e in counters] == [(3, 2), (9, 0)]

    def test_one_pid_per_executor(self):
        doc = chrome_trace({"GP": sample_recorder(), "CORO": sample_recorder()})
        pids = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert pids == {"GP": 0, "CORO": 1}


class TestJsonl:
    def test_one_line_per_span_and_sample(self):
        lines = [json.loads(line) for line in spans_jsonl({"CORO": sample_recorder()})]
        spans = [r for r in lines if "kind" in r]
        samples = [r for r in lines if "counter" in r]
        assert len(spans) == 4 and len(samples) == 2
        assert all(r["process"] == "CORO" for r in lines)


class TestRunSummaryAndArtifacts:
    def test_run_summary_shape(self):
        doc = run_summary("fig7", {"CORO": {"cycles": 10, "issue_width": 4}})
        assert doc["schema"] == RUN_SUMMARY_SCHEMA
        assert doc["experiment"] == "fig7"
        assert doc["executors"]["CORO"]["cycles"] == 10

    def test_write_run_artifacts(self, tmp_path):
        recorders = {"CORO": sample_recorder()}
        summary = run_summary("fig7", {"CORO": {"cycles": 20, "issue_width": 4}})
        paths = write_run_artifacts(tmp_path, "fig7", recorders, summary)
        assert set(paths) == {"trace", "summary", "events"}
        trace = json.loads(paths["trace"].read_text())
        assert trace["schema"] == CHROME_TRACE_SCHEMA
        assert json.loads(paths["summary"].read_text()) == summary
        lines = paths["events"].read_text().splitlines()
        assert len(lines) == 6 and all(json.loads(line) for line in lines)
