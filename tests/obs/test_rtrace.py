"""Tests for request span trees and their exporters, on the hard edges.

The generic "every trace is well-formed" sweep lives in the service
integration tests; this file drives the two lifecycles that historically
break trace exporters — a request *admitted under pressure then shed to
the overflow lane*, and a *hedged dispatch pair whose loser is cancelled
mid-span* — and asserts that both the span trees and the Chrome-trace
export stay closed: no orphan parents, no unclosed (inverted) spans, no
event outside its request's window.
"""

import numpy as np
import pytest

from repro.config import scaled
from repro.obs.rtrace import (
    REQUEST_TRACE_SCHEMA,
    RequestTracer,
    request_chrome_trace,
    request_traces_jsonl,
    trace_errors,
)
from repro.service.arrivals import PoissonArrivals
from repro.service.loadgen import sequential_capacity
from repro.service.server import ServiceConfig, ServiceServer
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.generators import make_table

ARCH = scaled(64)
N_REQUESTS = 60
SEED = 0

BASE_CONFIG = ServiceConfig(
    max_batch=8,
    max_wait_cycles=2_000,
    queue_capacity=32,
    n_shards=2,
    warmup_requests=8,
    slo_cycles=20_000,
)


@pytest.fixture(scope="module")
def table():
    allocator = AddressSpaceAllocator(page_size=ARCH.page_size)
    return make_table(allocator, "rtrace/dict", 1 << 20)


@pytest.fixture(scope="module")
def values(table):
    rng = np.random.RandomState(SEED + 11)
    return [int(v) for v in rng.randint(0, table.size, N_REQUESTS)]


@pytest.fixture(scope="module")
def capacity(table):
    cap, _ = sequential_capacity(
        table, ARCH, n_shards=BASE_CONFIG.n_shards, seed=SEED
    )
    return cap


def traced_run(table, values, config, rate):
    tracer = RequestTracer()
    server = ServiceServer(table, config, arch=ARCH, seed=SEED, tracer=tracer)
    report = server.serve(PoissonArrivals(rate, len(values), SEED), values)
    return report, tracer


def chrome_invariants(doc):
    """Structural checks every exported Chrome trace must satisfy."""
    assert doc["schema"] == REQUEST_TRACE_SCHEMA
    events = doc["traceEvents"]
    named_tids = {
        e["tid"] for e in events if e["ph"] == "M" and e["name"] == "thread_name"
    }
    for event in events:
        if event["ph"] == "M":
            continue
        # Every sample lands on a declared request (or fault) thread.
        assert event["tid"] in named_tids, event
        assert event["ph"] in ("X", "i"), event
        if event["ph"] == "X":
            assert event["dur"] >= 0, event  # closed, never inverted
    return events


@pytest.fixture(scope="module")
def shed_run(table, values, capacity):
    """Overloaded shed-policy run: admitted-then-shed requests exist."""
    import dataclasses

    config = dataclasses.replace(
        BASE_CONFIG, overload_policy="shed", queue_capacity=16
    )
    return traced_run(table, values, config, 3 * capacity)


@pytest.fixture(scope="module")
def hedge_run(table, values, capacity):
    """Overloaded hedging run: hedged pairs with cancelled losers exist."""
    import dataclasses

    config = dataclasses.replace(BASE_CONFIG, hedge_after_cycles=200)
    return traced_run(table, values, config, 3 * capacity)


class TestShedExport:
    def test_shed_requests_trace_through_the_overflow_lane(self, shed_run):
        report, tracer = shed_run
        traces = tracer.traces()
        shed = [t for t in traces if t["outcome"] == "shed"]
        assert shed, "overload did not shed — fixture rate too low"
        for trace in shed:
            assert trace_errors(trace) == []
            stages = [s for s in trace["spans"] if s["kind"] == "stage"]
            assert [s["name"] for s in stages] == ["shed-wait", "execute"]
            attempts = [s for s in trace["spans"] if s["kind"] == "attempt"]
            assert len(attempts) == 1
            assert attempts[0]["attrs"]["lane"] == "overflow"
            # The admission verdict is preserved on the mark span.
            (admission,) = [
                s for s in trace["spans"] if s["name"] == "admission"
            ]
            assert admission["attrs"]["verdict"] == "shed"

    def test_chrome_export_closes_every_shed_span(self, shed_run):
        _, tracer = shed_run
        traces = tracer.traces()
        events = chrome_invariants(request_chrome_trace(traces, label="shed"))
        by_tid = {}
        for trace in traces:
            by_tid[trace["index"]] = trace
        for event in events:
            if event["ph"] == "M":
                continue
            trace = by_tid[event["tid"]]
            end = event["ts"] + event.get("dur", 0)
            assert trace["arrival"] <= event["ts"] <= trace["end"]
            assert end <= trace["end"], event


class TestHedgeExport:
    def test_loser_is_cancelled_mid_span_and_linked_to_its_winner(
        self, hedge_run
    ):
        _, tracer = hedge_run
        traces = tracer.traces()
        cancelled = []
        for trace in traces:
            assert trace_errors(trace) == []
            spans = {s["id"]: s for s in trace["spans"]}
            for span in trace["spans"]:
                if (
                    span["kind"] == "attempt"
                    and span["attrs"].get("status") == "cancelled"
                ):
                    cancelled.append((trace, span, spans))
        assert cancelled, "overload did not hedge — fixture rate too low"
        truncated = 0
        for trace, span, spans in cancelled:
            attrs = span["attrs"]
            assert not attrs.get("winner")
            # The loser closes inside the request window...
            assert span["end"] <= trace["end"]
            # ...while its planned end records where it would have run.
            assert attrs["planned_end"] >= span["end"]
            if attrs["planned_end"] > span["end"]:
                truncated += 1
            # The race link resolves to the winning attempt span, and a
            # completed request's answer arrives when its winner does.
            winner = spans[attrs["raced_with"]]
            assert winner["kind"] == "attempt"
            assert winner["attrs"]["winner"] is True
            # Exactly one leg of the pair is the hedged duplicate — the
            # loser when the primary won, the winner when it didn't.
            assert attrs["hedge"] != winner["attrs"]["hedge"]
            if trace["outcome"] == "completed":
                assert winner["end"] == trace["end"]
        # At least one loser was genuinely cut short mid-flight (not
        # merely slower-by-a-hair): the export edge this test exists for.
        assert truncated > 0

    def test_chrome_export_has_no_orphans_or_unclosed_spans(self, hedge_run):
        _, tracer = hedge_run
        traces = tracer.traces()
        events = chrome_invariants(request_chrome_trace(traces, label="hedge"))
        # Every span of every trace made it out: completes + instants
        # (metadata rows excluded) match the span population.
        n_spans = sum(len(t["spans"]) for t in traces)
        samples = [e for e in events if e["ph"] != "M"]
        assert len(samples) == n_spans

    def test_fault_timeline_thread_only_appears_when_faulted(self, hedge_run):
        _, tracer = hedge_run
        doc = request_chrome_trace(tracer.traces(), label="hedge")
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "faults" not in names
        faulted = request_chrome_trace(
            tracer.traces(),
            label="hedge",
            fault_windows=[(100, 400, "shard_stall", 0)],
            fault_points=[(250, "cache_flush", None)],
        )
        names = [
            e["args"]["name"]
            for e in faulted["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "faults" in names
        fault_events = [
            e for e in faulted["traceEvents"] if e.get("cat") == "fault"
        ]
        assert {e["ph"] for e in fault_events} == {"X", "i"}


class TestJsonlExport:
    def test_one_sorted_line_per_trace(self, shed_run):
        import json

        _, tracer = shed_run
        traces = tracer.traces()
        lines = list(request_traces_jsonl(traces))
        assert len(lines) == len(traces)
        for line, trace in zip(lines, traces):
            assert json.loads(line) == trace
            assert line == json.dumps(trace, sort_keys=True)
