"""Tests for the metrics registry and its engine-wide snapshot invariants."""

import pytest

from repro.config import HASWELL
from repro.errors import SimulationError
from repro.indexes.binary_search import binary_search_coro
from repro.indexes.sorted_array import SortedIntArray
from repro.interleaving import run_interleaved
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.allocator import AddressSpaceAllocator
from repro.sim.engine import ExecutionEngine
from repro.sim.memory import HIT_LEVELS, MemorySystem


class TestInstruments:
    def test_counter(self):
        c = Counter("loads")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(SimulationError):
            c.inc(-1)

    def test_gauge_tracks_peak(self):
        g = Gauge("occupancy")
        g.set(3)
        g.set(10)
        g.set(2)
        assert g.value == 2 and g.peak == 10

    def test_histogram_buckets_and_stats(self):
        h = Histogram("latency")
        for v in (1, 2, 300):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["min"] == 1 and d["max"] == 300
        assert d["total"] == 303
        assert sum(d["buckets"]) == 3
        with pytest.raises(SimulationError):
            h.observe(-1)


class TestRegistry:
    def test_instruments_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a.hits") is reg.counter("a.hits")
        with pytest.raises(SimulationError):
            reg.gauge("a.hits")

    def test_sources_mount_at_dotted_paths(self):
        reg = MetricsRegistry()
        reg.counter("cache.l1.hits").inc(7)
        reg.register_source("tmam", lambda: {"cycles": 11})
        snap = reg.snapshot()
        assert snap["cache"]["l1"]["hits"] == 7
        assert snap["tmam"]["cycles"] == 11

    def test_reregistering_a_source_replaces_it(self):
        reg = MetricsRegistry()
        reg.register_source("engine", lambda: {"cycles": 1})
        reg.register_source("engine", lambda: {"cycles": 2})
        assert reg.snapshot()["engine"]["cycles"] == 2

    def test_snapshot_is_a_deep_copy(self):
        reg = MetricsRegistry()
        reg.register_source("m", lambda: {"inner": {"x": 1}})
        snap = reg.snapshot()
        snap["m"]["inner"]["x"] = 99
        assert reg.snapshot()["m"]["inner"]["x"] == 1

    def test_names_lists_every_path(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.register_source("a", dict)
        assert reg.names() == ["a", "b"]


def run_engine(n_lookups=8, group_size=4):
    allocator = AddressSpaceAllocator(page_size=HASWELL.page_size)
    table = SortedIntArray.from_values(allocator, "table", list(range(0, 4096, 3)))
    engine = ExecutionEngine(HASWELL, MemorySystem(HASWELL))
    values = [table.value_at(i * 37 % table.size) for i in range(n_lookups)]
    run_interleaved(
        engine,
        lambda v, il: binary_search_coro(table, v, interleave=il),
        values,
        group_size,
    )
    engine.settle()
    return engine


class TestEngineSnapshotInvariants:
    """The registry exposes everything reporting prints, and it adds up."""

    def test_tmam_slots_sum_to_cycles_times_width(self):
        engine = run_engine()
        snap = engine.metrics.snapshot()
        slots = snap["tmam"]["slots"]
        expected = snap["engine"]["cycles"] * snap["engine"]["issue_width"]
        assert sum(slots.values()) == pytest.approx(expected)
        assert snap["tmam"]["total_slots"] == pytest.approx(expected)

    def test_hit_level_loads_sum_to_total_loads(self):
        engine = run_engine()
        snap = engine.metrics.snapshot()
        by_level = snap["memory"]["loads_by_level"]
        assert set(by_level) == set(HIT_LEVELS)
        assert sum(by_level.values()) == snap["memory"]["loads"]

    def test_snapshot_matches_live_stats(self):
        engine = run_engine()
        snap = engine.metrics.snapshot()
        assert snap["engine"]["cycles"] == engine.clock
        assert snap["tmam"]["cycles"] == engine.tmam.cycles
        assert snap["cache"]["l1"]["hits"] == engine.memory.l1.stats.hits
        assert snap["tlb"]["walks"] == engine.memory.tlb.stats.walks
        assert snap["lfb"]["fills_issued"] == engine.memory.lfbs.fills_issued
