"""Tests for the exemplar histogram and the canonical nearest-rank percentile."""

import math
import random

import pytest

from repro.errors import SimulationError
from repro.obs.hist import (
    BUCKETS_PER_OCTAVE,
    DEFAULT_N_BUCKETS,
    Exemplar,
    ExemplarHistogram,
    exemplar_from_dict,
    nearest_rank,
)


class TestNearestRank:
    def test_pinned_equivalent_to_the_historic_ceil_rank_formula(self):
        """The dedup contract: every caller that hand-rolled nearest-rank
        (service report, load generator, chaos benchmark) now delegates
        here, so this implementation must be bit-identical to the
        formula they used — rank = ceil(n*q/100), clamped to >= 1."""
        rng = random.Random(7)
        for trial in range(200):
            n = rng.randint(1, 400)
            values = sorted(rng.randint(0, 10**6) for _ in range(n))
            q = rng.choice([1, 25, 50, 90, 95, 99, 99.9, 100, rng.uniform(0.1, 100)])
            rank = max(1, math.ceil(len(values) * q / 100))
            assert nearest_rank(values, q) == values[rank - 1], (n, q)

    def test_known_values(self):
        values = list(range(1, 101))
        assert nearest_rank(values, 50) == 50
        assert nearest_rank(values, 95) == 95
        assert nearest_rank(values, 99) == 99
        assert nearest_rank(values, 100) == 100
        assert nearest_rank([7], 99) == 7
        assert nearest_rank([], 50) == 0

    def test_server_percentile_delegates_here(self):
        from repro.service.server import percentile

        values = sorted([12, 5, 99, 4, 3, 77, 23])
        for q in (1, 50, 95, 99, 100):
            assert percentile(values, q) == nearest_rank(values, q)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(SimulationError):
            nearest_rank([1, 2], 0)
        with pytest.raises(SimulationError):
            nearest_rank([1, 2], 101)


class TestExemplarHistogram:
    def test_bucket_bounds_are_fixed_quarter_octaves(self):
        hist = ExemplarHistogram()
        assert hist.n_buckets == DEFAULT_N_BUCKETS
        # Bucket 0 is [0, 1); bucket i >= 1 is [2^((i-1)/4), 2^(i/4)).
        assert hist.bucket_index(0) == 0
        assert hist.bucket_index(1) == 1
        for value in (1, 3, 17, 1000, 12345, 10**7):
            index = hist.bucket_index(value)
            low, high = hist.bucket_bounds(index)
            assert low <= value < high, (value, index, low, high)
        # The same value maps to the same bucket in any histogram — the
        # bounds are a pure function of the bucket count.
        assert ExemplarHistogram().bucket_index(12345) == hist.bucket_index(12345)
        # Out-of-range values clamp into the top bucket, never raise.
        assert hist.bucket_index(2**200) == hist.n_buckets - 1
        with pytest.raises(SimulationError):
            hist.bucket_index(-1)

    def test_buckets_per_octave(self):
        hist = ExemplarHistogram()
        # Doubling a value advances exactly BUCKETS_PER_OCTAVE buckets.
        assert (
            hist.bucket_index(4096) - hist.bucket_index(2048)
            == BUCKETS_PER_OCTAVE
        )

    def test_observe_keeps_the_worst_exemplar_per_bucket(self):
        hist = ExemplarHistogram()
        # 1030 and 1100 share the [2^10, 2^10.25) bucket; 1100 is worse.
        assert hist.bucket_index(1030) == hist.bucket_index(1100)
        hist.observe(1030, "req-a")
        hist.observe(1100, "req-b")
        hist.observe(1050, "req-c")
        (exemplar,) = hist.exemplars()
        assert exemplar == Exemplar(
            bucket=hist.bucket_index(1100), value=1100, trace_id="req-b"
        )
        assert hist.count == 3
        assert hist.total == 3180
        assert hist.mean == pytest.approx(1060)

    def test_exemplar_for_walks_cumulative_counts(self):
        hist = ExemplarHistogram()
        for value in (10, 10, 10, 10, 10, 10, 10, 10, 10, 5000):
            hist.observe(value, f"req-{value}")
        # p50 sits among the ten cheap observations; p100 is the outlier.
        assert hist.exemplar_for(50).trace_id == "req-10"
        assert hist.exemplar_for(100).trace_id == "req-5000"
        assert hist.percentile_bucket(100) == hist.bucket_index(5000)

    def test_empty_histogram(self):
        hist = ExemplarHistogram()
        assert hist.exemplar_for(99) is None
        assert hist.percentile_bucket(99) is None
        assert hist.mean == 0.0
        assert hist.exemplars() == []

    def test_needs_two_buckets(self):
        with pytest.raises(SimulationError):
            ExemplarHistogram(n_buckets=1)

    def test_as_dict_round_trips_counts_and_exemplars(self):
        hist = ExemplarHistogram()
        rng = random.Random(3)
        for i in range(100):
            hist.observe(rng.randint(0, 100_000), f"req-{i:05d}")
        record = hist.as_dict()
        assert record["count"] == 100
        assert sum(record["counts"]) == 100
        assert record["buckets_per_octave"] == BUCKETS_PER_OCTAVE
        assert record["n_buckets"] == hist.n_buckets
        for entry in record["exemplars"]:
            assert record["counts"][entry["bucket"]] > 0


class TestExemplarFromDict:
    def test_matches_the_live_walk_for_every_percentile(self):
        hist = ExemplarHistogram()
        rng = random.Random(17)
        for i in range(250):
            hist.observe(rng.randint(0, 500_000), f"req-{i:05d}")
        record = hist.as_dict()
        for q in (1, 10, 50, 90, 95, 99, 99.9, 100):
            assert exemplar_from_dict(record, q) == hist.exemplar_for(q), q

    def test_empty_record_returns_none(self):
        assert exemplar_from_dict(ExemplarHistogram().as_dict(), 99) is None

    def test_rejects_out_of_range_q(self):
        hist = ExemplarHistogram()
        hist.observe(10, "req-x")
        with pytest.raises(SimulationError):
            exemplar_from_dict(hist.as_dict(), 0)

    def test_missing_exemplar_entry_is_an_error(self):
        hist = ExemplarHistogram()
        hist.observe(10, "req-x")
        record = hist.as_dict()
        record["exemplars"] = []  # corrupt: counts say the bucket is live
        with pytest.raises(SimulationError):
            exemplar_from_dict(record, 99)
