"""Tests for the fault injector's window queries and point cursor."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CacheFlush,
    FaultInjector,
    FaultSchedule,
    LatencySpike,
    LfbShrink,
    ShardCrash,
    ShardStall,
)


class _FakeLfbs:
    def __init__(self, capacity=10):
        self.capacity = capacity

    def set_capacity(self, capacity):
        self.capacity = capacity


class _FakeMemory:
    """The slice of MemorySystem the injector touches."""

    def __init__(self):
        self.extra_dram_latency = 0
        self.lfbs = _FakeLfbs()
        self.private_flushes = 0

    def flush_private(self):
        self.private_flushes += 1


class _FakeL3:
    def __init__(self):
        self.flushes = 0

    def flush(self):
        self.flushes += 1


def make_injector(events, n_shards=2, shared_l3=None):
    schedule = FaultSchedule(events=tuple(events))
    memories = [_FakeMemory() for _ in range(n_shards)]
    return FaultInjector(schedule, memories, shared_l3=shared_l3), memories


class TestAvailability:
    def test_shard_unavailable_during_stall(self):
        injector, _ = make_injector([ShardStall(at=100, shard=0, duration=50)])
        assert injector.available_from(0, 120) == 150
        assert injector.available_from(0, 99) == 99
        assert injector.available_from(0, 150) == 150
        assert injector.available_from(1, 120) == 120  # other shard untouched

    def test_chained_outages_compose(self):
        injector, _ = make_injector(
            [
                ShardStall(at=100, shard=0, duration=50),
                ShardCrash(at=140, shard=0, duration=60),
            ]
        )
        # Entering the first window rides through the overlapping second.
        assert injector.available_from(0, 110) == 200

    def test_all_shards_down_needs_every_shard(self):
        injector, _ = make_injector(
            [
                ShardStall(at=100, shard=0, duration=50),
                ShardStall(at=100, shard=1, duration=20),
            ]
        )
        assert injector.all_shards_down_at(110)
        assert not injector.all_shards_down_at(130)  # shard 1 is back


class TestEnvironment:
    def test_spikes_sum_and_shrinks_take_the_minimum(self):
        injector, _ = make_injector(
            [
                LatencySpike(at=0, duration=100, extra_latency=200),
                LatencySpike(at=50, duration=100, extra_latency=100),
                LfbShrink(at=0, duration=100, capacity=6),
                LfbShrink(at=20, duration=40, capacity=4),
            ]
        )
        assert injector.extra_latency_at(0, 60) == 300
        assert injector.extra_latency_at(0, 120) == 100
        assert injector.lfb_capacity_at(0, 30) == 4
        assert injector.lfb_capacity_at(0, 70) == 6
        assert injector.lfb_capacity_at(0, 150) is None

    def test_environment_is_falsy_when_clean(self):
        injector, _ = make_injector([LatencySpike(at=50, duration=10, extra_latency=9)])
        assert not injector.environment(0, 0)
        assert injector.environment(0, 55)

    def test_applied_mutates_then_restores(self):
        injector, memories = make_injector(
            [
                LatencySpike(at=0, duration=100, extra_latency=250),
                LfbShrink(at=0, duration=100, capacity=5),
            ]
        )
        memory = memories[0]
        with injector.applied(0, 10) as env:
            assert memory.extra_dram_latency == 250
            assert memory.lfbs.capacity == 5
            assert env.extra_latency == 250
        assert memory.extra_dram_latency == 0
        assert memory.lfbs.capacity == 10

    def test_shrink_never_grows_the_pool(self):
        injector, memories = make_injector(
            [LfbShrink(at=0, duration=100, capacity=64)]
        )
        with injector.applied(0, 10):
            assert memories[0].lfbs.capacity == 10  # min(base, fault)


class TestCrashQueries:
    def test_crash_strictly_inside_the_window(self):
        crash = ShardCrash(at=100, shard=0, duration=40)
        injector, _ = make_injector([crash])
        assert injector.crash_between(0, 50, 150) is crash
        assert injector.crash_between(0, 100, 150) is None  # at start: consumed
        assert injector.crash_between(0, 10, 100) is None  # at end: missed
        assert injector.crash_between(1, 50, 150) is None  # other shard

    def test_stalls_do_not_kill_batches(self):
        injector, _ = make_injector([ShardStall(at=100, shard=0, duration=40)])
        assert injector.crash_between(0, 50, 150) is None


class TestPointCursor:
    def test_flushes_apply_once_in_order(self):
        l3 = _FakeL3()
        injector, memories = make_injector(
            [
                CacheFlush(at=100, shard=0),
                CacheFlush(at=200, llc=True),
            ],
            shared_l3=l3,
        )
        assert injector.next_pending_at() == 100
        applied = injector.apply_pending(150)
        assert [e.at for e in applied] == [100]
        assert memories[0].private_flushes == 1
        assert memories[1].private_flushes == 0
        assert injector.next_pending_at() == 200
        injector.apply_pending(10_000)
        # The second flush targeted every shard and the shared LLC.
        assert memories[0].private_flushes == 2
        assert memories[1].private_flushes == 1
        assert l3.flushes == 1
        assert injector.next_pending_at() is None
        assert injector.flushes_applied == 2
        assert injector.apply_pending(20_000) == []

    def test_window_events_never_enter_the_cursor(self):
        injector, _ = make_injector([ShardStall(at=5, shard=0, duration=10)])
        assert injector.next_pending_at() is None


def test_injector_needs_shards():
    with pytest.raises(ConfigurationError, match="shard"):
        FaultInjector(FaultSchedule(events=()), [])
