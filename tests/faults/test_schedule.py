"""Tests for fault schedules, profiles, and the chaos registry."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.faults import (
    FAULT_KINDS,
    CacheFlush,
    FaultProfile,
    FaultSchedule,
    LatencySpike,
    LfbShrink,
    ShardCrash,
    ShardStall,
    fault_profile_names,
    get_fault_profile,
    register_fault_profile,
    resolve_schedule,
)
from repro.service import fault_horizon


class TestEvents:
    def test_window_events_span_their_duration(self):
        spike = LatencySpike(at=100, duration=50, extra_latency=200)
        assert spike.until == 150
        assert spike.active_at(100) and spike.active_at(149)
        assert not spike.active_at(99) and not spike.active_at(150)

    def test_point_events_have_empty_windows(self):
        flush = CacheFlush(at=100)
        assert flush.until == 100
        assert not flush.is_window

    def test_shard_targeting(self):
        stall = ShardStall(at=0, shard=1, duration=10)
        assert stall.targets(1) and not stall.targets(0)
        everywhere = LatencySpike(at=0, duration=10, extra_latency=100)
        assert everywhere.targets(0) and everywhere.targets(7)

    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="negative"):
            CacheFlush(at=-1)

    def test_window_needs_positive_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            ShardCrash(at=0, shard=0, duration=0)


class TestSchedule:
    def test_events_sort_by_cycle(self):
        schedule = FaultSchedule(
            events=(
                CacheFlush(at=300),
                LatencySpike(at=100, duration=10, extra_latency=50),
                ShardStall(at=200, shard=0, duration=10),
            )
        )
        assert [e.at for e in schedule.events] == [100, 200, 300]

    def test_counts_by_kind_is_zero_filled(self):
        schedule = FaultSchedule(events=(CacheFlush(at=1),))
        counts = schedule.counts_by_kind()
        assert set(counts) == set(FAULT_KINDS)
        assert counts["cache_flush"] == 1
        assert counts["latency_spike"] == 0

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule(events=())
        assert FaultSchedule(events=(CacheFlush(at=1),))

    def test_windows_for_filters_by_shard(self):
        schedule = FaultSchedule(
            events=(
                ShardStall(at=0, shard=0, duration=10),
                ShardStall(at=0, shard=1, duration=10),
                LatencySpike(at=0, duration=10, extra_latency=9),
                CacheFlush(at=5),
            )
        )
        kinds = [e.kind for e in schedule.windows_for(0)]
        assert kinds == ["latency_spike", "shard_stall"]

    def test_jitter_rng_is_seed_deterministic(self):
        a = FaultSchedule(events=(), seed=3)
        b = FaultSchedule(events=(), seed=3)
        c = FaultSchedule(events=(), seed=4)
        assert a.jitter_rng().random() == b.jitter_rng().random()
        assert a.jitter_rng().random() != c.jitter_rng().random()


class TestProfiles:
    def test_builtin_profiles_registered(self):
        names = fault_profile_names()
        for name in ("none", "latency-spikes", "shard-outage", "cache-storm",
                     "chaos", "chaos-quick"):
            assert name in names

    def test_lookup_is_case_insensitive(self):
        assert get_fault_profile("CHAOS") is get_fault_profile("chaos")

    def test_unknown_profile_lists_registered(self):
        with pytest.raises(WorkloadError, match="chaos"):
            get_fault_profile("gremlins")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            register_fault_profile(get_fault_profile("none"))

    def test_build_is_deterministic_in_args(self):
        profile = get_fault_profile("chaos")
        assert profile.build(200_000, 2, seed=5) == profile.build(200_000, 2, seed=5)
        assert profile.build(200_000, 2, seed=5) != profile.build(200_000, 2, seed=6)

    def test_every_event_lands_inside_the_horizon(self):
        horizon = 150_000
        for name in fault_profile_names():
            schedule = get_fault_profile(name).build(horizon, 2, seed=1)
            for event in schedule.events:
                assert 0 <= event.at < horizon, (name, event)

    def test_none_profile_is_empty(self):
        assert len(get_fault_profile("none").build(100_000, 2)) == 0

    def test_invalid_build_args_rejected(self):
        profile = get_fault_profile("chaos")
        with pytest.raises(ConfigurationError, match="horizon"):
            profile.build(-1, 2)
        with pytest.raises(ConfigurationError, match="shard"):
            profile.build(100, 0)


class TestResolveSchedule:
    def test_none_spec_passes_through(self):
        assert resolve_schedule(None, horizon=100, n_shards=1) is None

    def test_empty_profile_collapses_to_none(self):
        assert resolve_schedule("none", horizon=100_000, n_shards=2) is None

    def test_name_profile_and_schedule_agree(self):
        by_name = resolve_schedule("chaos", horizon=120_000, n_shards=2, seed=7)
        by_profile = resolve_schedule(
            get_fault_profile("chaos"), horizon=120_000, n_shards=2, seed=7
        )
        assert by_name == by_profile
        assert resolve_schedule(by_name, horizon=0, n_shards=1) is by_name

    def test_garbage_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            resolve_schedule(42, horizon=100, n_shards=1)


class TestFaultHorizon:
    def test_horizon_scales_with_load(self):
        assert fault_horizon(100, 1.0) == 300_000
        # Twice the rate halves the horizon: same wall of work.
        assert fault_horizon(100, 2.0) == 150_000

    def test_horizon_is_technique_independent(self):
        # The same (n_requests, rate) pair must give every technique the
        # same schedule — the horizon is the only schedule input derived
        # from the load point.
        assert fault_horizon(150, 0.83) == fault_horizon(150, 0.83)

    def test_horizon_never_collapses_to_zero(self):
        assert fault_horizon(1, 1e9) == 1


def test_lfb_shrink_capacity_validation():
    with pytest.raises(ConfigurationError, match="capacity"):
        LfbShrink(at=0, duration=10, capacity=0)
