"""Unit tests for materialized and implicit sorted arrays."""

import numpy as np
import pytest

from repro.errors import IndexStructureError
from repro.indexes.sorted_array import (
    ImplicitSortedArray,
    SortedIntArray,
    SortedStringArray,
    int_array_of_bytes,
    string_array_of_bytes,
)
from repro.sim.allocator import AddressSpaceAllocator
from repro.workloads.strings import index_to_key


@pytest.fixture
def alloc():
    return AddressSpaceAllocator()


class TestSortedIntArray:
    def test_values_and_addresses(self, alloc):
        arr = SortedIntArray.from_values(alloc, "a", [1, 5, 9], element_size=4)
        assert arr.size == 3
        assert arr.value_at(1) == 5
        assert arr[2] == 9
        assert arr.address_of(1) == arr.region.base + 4
        assert arr.nbytes == 12

    def test_rejects_unsorted(self, alloc):
        with pytest.raises(IndexStructureError):
            SortedIntArray.from_values(alloc, "a", [3, 1, 2])

    def test_allows_duplicates(self, alloc):
        arr = SortedIntArray.from_values(alloc, "a", [1, 1, 2])
        assert arr.value_at(0) == arr.value_at(1) == 1

    def test_rejects_empty(self, alloc):
        with pytest.raises(IndexStructureError):
            SortedIntArray.from_values(alloc, "a", np.array([], dtype=np.int64))

    def test_out_of_range_access(self, alloc):
        arr = SortedIntArray.from_values(alloc, "a", [1, 2])
        with pytest.raises(IndexStructureError):
            arr.value_at(2)
        with pytest.raises(IndexStructureError):
            arr.address_of(-1)

    def test_int_compare_has_no_surcharge(self, alloc):
        arr = SortedIntArray.from_values(alloc, "a", [1])
        assert arr.compare_extra == (0, 0)


class TestSortedStringArray:
    def test_values_sorted_bytes(self, alloc):
        values = [b"aaa", b"bbb", b"ccc"]
        arr = SortedStringArray.from_values(alloc, "s", values)
        assert arr.value_at(0).startswith(b"aaa")
        assert arr.element_size == 16

    def test_rejects_unsorted_strings(self, alloc):
        with pytest.raises(IndexStructureError):
            SortedStringArray.from_values(alloc, "s", [b"b", b"a"])

    def test_string_compare_surcharge(self, alloc):
        arr = SortedStringArray.from_values(alloc, "s", [b"a"])
        assert arr.compare_extra[0] > 0


class TestImplicitArrays:
    def test_identity_values(self, alloc):
        arr = int_array_of_bytes(alloc, "i", 1024, element_size=4)
        assert arr.size == 256
        assert arr.value_at(0) == 0
        assert arr.value_at(255) == 255

    def test_string_variant_matches_codec(self, alloc):
        arr = string_array_of_bytes(alloc, "s", 1024)
        assert arr.size == 64
        assert arr.value_at(5) == index_to_key(5)
        assert arr.compare_extra[0] > 0

    def test_custom_value_fn(self, alloc):
        region = alloc.allocate("c", 1024)
        arr = ImplicitSortedArray(region, 10, 4, value_fn=lambda i: i * 7)
        assert arr.value_at(3) == 21

    def test_too_small_rejected(self, alloc):
        with pytest.raises(IndexStructureError):
            int_array_of_bytes(alloc, "z", 2, element_size=4)

    def test_addresses_match_materialized_layout(self, alloc):
        implicit = int_array_of_bytes(alloc, "imp", 64, element_size=4)
        materialized = SortedIntArray.from_values(
            alloc, "mat", list(range(16)), element_size=4
        )
        implicit_offsets = [implicit.address_of(i) - implicit.region.base for i in range(16)]
        materialized_offsets = [
            materialized.address_of(i) - materialized.region.base for i in range(16)
        ]
        assert implicit_offsets == materialized_offsets

    def test_region_too_small_for_size(self, alloc):
        region = alloc.allocate("r", 16)
        with pytest.raises(IndexStructureError):
            ImplicitSortedArray(region, 100, 4)
