"""Tests for the skip list and its lookup coroutine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import IndexStructureError
from repro.indexes.base import INVALID_CODE
from repro.indexes.skip_list import MAX_LEVEL, SkipList, skip_lookup_stream
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_list(entries=None):
    skiplist = SkipList(AddressSpaceAllocator(), "sl")
    if entries:
        skiplist.build(entries.keys(), entries.values())
    return skiplist


def run_stream(stream):
    return ExecutionEngine(HASWELL).run(stream)


class TestStructure:
    def test_insert_and_lookup(self):
        skiplist = make_list({5: 50, 1: 10, 9: 90})
        assert skiplist.lookup(5) == 50
        assert skiplist.lookup(1) == 10
        assert skiplist.lookup(9) == 90
        assert skiplist.lookup(2) == INVALID_CODE

    def test_duplicate_rejected(self):
        skiplist = make_list({1: 1})
        with pytest.raises(IndexStructureError):
            skiplist.insert(1, 2)

    def test_level0_is_sorted(self):
        rng = np.random.RandomState(0)
        keys = rng.permutation(500)
        skiplist = make_list(dict((int(k), int(k) * 2) for k in keys))
        ordered = list(skiplist.iter_level0())
        assert ordered == [(k, k * 2) for k in range(500)]

    def test_invariants_after_growth(self):
        skiplist = SkipList(AddressSpaceAllocator(), "sl", capacity_hint=16)
        for key in range(300):
            skiplist.insert(key * 7 % 2100, key)
        skiplist.check_invariants()
        assert skiplist.n_entries == 300

    def test_heights_deterministic_and_bounded(self):
        a = make_list({k: k for k in range(100)})
        b = make_list({k: k for k in range(100)})
        assert np.array_equal(a._heights[:100], b._heights[:100])
        assert a.level <= MAX_LEVEL
        assert a.level > 1  # some tower rose above the base level


class TestLookupStream:
    def test_stream_matches_oracle(self):
        rng = np.random.RandomState(1)
        keys = [int(k) for k in rng.choice(10_000, 600, replace=False)]
        skiplist = make_list({k: k * 3 for k in keys})
        for probe in keys[::29] + [-1, 10_001, 5]:
            assert run_stream(skip_lookup_stream(skiplist, probe)) == (
                skiplist.lookup(probe)
            )

    def test_interleaved_equals_sequential(self):
        rng = np.random.RandomState(2)
        keys = [int(k) for k in rng.choice(5_000, 400, replace=False)]
        skiplist = make_list({k: k for k in keys})
        probes = [int(p) for p in rng.randint(-5, 5_005, 150)]
        factory = lambda key, il: skip_lookup_stream(skiplist, key, il)
        seq = run_sequential(ExecutionEngine(HASWELL), factory, probes)
        inter = run_interleaved(ExecutionEngine(HASWELL), factory, probes, 6)
        assert seq == inter

    def test_interleaving_pays_off_on_large_lists(self):
        from repro.sim.memory import MemorySystem

        rng = np.random.RandomState(3)
        keys = np.unique(rng.randint(0, 10**8, 130_000))[:60_000]
        rng.shuffle(keys)
        keys = [int(k) for k in keys]
        skiplist = SkipList(AddressSpaceAllocator(), "sl", capacity_hint=60_000)
        skiplist.build(keys, keys)
        probes = [int(k) for k in rng.choice(keys, 250)]
        warm = [int(k) for k in rng.choice(keys, 250)]
        factory = lambda key, il: skip_lookup_stream(skiplist, key, il)

        def measure(runner):
            memory = MemorySystem(HASWELL)
            runner(ExecutionEngine(HASWELL, memory), warm)
            engine = ExecutionEngine(HASWELL, memory)
            runner(engine, probes)
            return engine.clock

        seq = measure(lambda e, ps: run_sequential(e, factory, ps))
        inter = measure(lambda e, ps: run_interleaved(e, factory, ps, 8))
        assert inter < 0.75 * seq

    @given(
        entries=st.dictionaries(
            st.integers(0, 5_000), st.integers(0, 5_000), min_size=1, max_size=200
        ),
        probes=st.lists(st.integers(-5, 5_005), max_size=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_dict(self, entries, probes):
        skiplist = make_list(entries)
        skiplist.check_invariants()
        for probe in list(entries)[:15] + probes:
            expected = entries.get(probe, INVALID_CODE)
            assert skiplist.lookup(probe) == expected
            assert run_stream(skip_lookup_stream(skiplist, probe)) == expected
