"""Tests for the page-blocked B+-tree (Section 6 TLB mitigation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import IndexStructureError
from repro.indexes.binary_search import binary_search_baseline, reference_search
from repro.indexes.btree_blocked import BlockedBTree, blocked_lookup_stream
from repro.indexes.sorted_array import int_array_of_bytes
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_tree(nbytes, page_size=4096):
    alloc = AddressSpaceAllocator()
    table = int_array_of_bytes(alloc, "arr", nbytes)
    return BlockedBTree(alloc, "bt", table, page_size=page_size), table


def run_stream(stream):
    return ExecutionEngine(HASWELL).run(stream)


class TestStructure:
    def test_single_page_array(self):
        tree, table = make_tree(4096)
        assert tree.height == 1
        assert run_stream(blocked_lookup_stream(tree, 100)) == 100

    def test_multi_level(self):
        tree, table = make_tree(64 << 20)
        assert tree.height == 3
        assert tree.n_leaves == (64 << 20) // 4096

    def test_page_must_divide_elements(self):
        alloc = AddressSpaceAllocator()
        table = int_array_of_bytes(alloc, "arr", 4096, element_size=4)
        with pytest.raises(IndexStructureError):
            BlockedBTree(alloc, "bt", table, page_size=4095)

    def test_inner_nodes_live_outside_array(self):
        tree, table = make_tree(16 << 20)
        assert not tree.region.overlaps(table.region)


class TestLookup:
    def test_matches_plain_binary_search(self):
        tree, table = make_tree(1 << 20)
        for probe in (-1, 0, 1, 1000, table.size - 1, table.size + 5):
            expected = run_stream(binary_search_baseline(table, probe))
            assert run_stream(blocked_lookup_stream(tree, probe)) == expected

    def test_interleaved_equals_sequential(self):
        tree, table = make_tree(4 << 20)
        probes = list(range(0, table.size, table.size // 50))
        seq = run_sequential(
            ExecutionEngine(HASWELL),
            lambda v, il: blocked_lookup_stream(tree, v, il),
            probes,
        )
        inter = run_interleaved(
            ExecutionEngine(HASWELL),
            lambda v, il: blocked_lookup_stream(tree, v, il),
            probes,
            6,
        )
        assert seq == inter

    def test_probes_confined_to_pages(self):
        """Within a level, all key loads fall inside one page."""
        from repro.sim import Load, record_events

        tree, table = make_tree(16 << 20)
        events, _ = record_events(blocked_lookup_stream(tree, 12345, False))
        loads = [e for e in events if isinstance(e, Load)]
        pages = [e.addr // 4096 for e in loads]
        # A lookup touches height pages (one per level), so the distinct
        # page count is bounded by the height (+1 for a boundary case).
        assert len(set(pages)) <= tree.height + 1

    @given(nbytes_kb=st.sampled_from([4, 8, 64, 1024]), probe=st.integers(-5, 300_000))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_reference(self, nbytes_kb, probe):
        tree, table = make_tree(nbytes_kb << 10)
        expected = reference_search(range(table.size), probe)
        assert run_stream(blocked_lookup_stream(tree, probe)) == expected
