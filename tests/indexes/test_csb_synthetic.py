"""Tests for the implicit (address-computed) CSB+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import IndexStructureError
from repro.indexes.base import INVALID_CODE
from repro.indexes.csb_tree import csb_lookup_stream
from repro.indexes.csb_tree_synthetic import ImplicitCSBTree
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_tree(n, **kw):
    return ImplicitCSBTree(AddressSpaceAllocator(), "it", n, **kw)


def run_stream(stream):
    return ExecutionEngine(HASWELL).run(stream)


class TestStructure:
    def test_single_leaf(self):
        tree = make_tree(5, node_size=128)
        assert tree.height == 1
        assert tree.is_leaf(tree.root_handle())

    def test_heights_grow_logarithmically(self):
        small = make_tree(100, node_size=128)
        large = make_tree(100_000, node_size=128)
        assert large.height > small.height

    def test_widths_and_spans_consistent(self):
        tree = make_tree(50_000, node_size=128)
        assert tree.width_at[0] == 1
        assert tree.width_at[-1] == tree.n_leaves
        for depth in range(tree.height - 1):
            assert tree.width_at[depth] == -(-tree.n_leaves // tree.span_at[depth])

    def test_node_addresses_disjoint_by_depth(self):
        tree = make_tree(10_000, node_size=128)
        seen = set()
        for depth in range(tree.height):
            for index in range(min(tree.width_at[depth], 50)):
                addr = tree.node_address((depth, index))
                assert addr not in seen
                seen.add(addr)

    def test_invalid_node_rejected(self):
        tree = make_tree(100, node_size=128)
        with pytest.raises(IndexStructureError):
            tree.node_address((0, 5))

    def test_child_out_of_range(self):
        tree = make_tree(10_000, node_size=128)
        root = tree.root_handle()
        with pytest.raises(IndexStructureError):
            tree.child_of(root, tree.fanout + 1)

    def test_zero_entries_rejected(self):
        with pytest.raises(IndexStructureError):
            make_tree(0)


class TestSearch:
    def test_every_key_found_small(self):
        tree = make_tree(777, node_size=64)
        for key in range(777):
            assert tree.search(key) == key
        assert tree.search(777) == INVALID_CODE
        assert tree.search(-1) == INVALID_CODE

    def test_stream_matches_python(self):
        tree = make_tree(5_000, node_size=128)
        for probe in list(range(-2, 5_003, 53)) + [0, 4_999, 5_000]:
            assert run_stream(csb_lookup_stream(tree, probe, False)) == tree.search(probe)

    def test_code_fn_applied_at_leaves(self):
        tree = make_tree(1_000, node_size=128, code_fn=lambda e: e * 31 % 1_000)
        assert tree.search(10) == 310
        assert run_stream(csb_lookup_stream(tree, 10, False)) == 310

    def test_value_fn_monotone_mapping(self):
        tree = make_tree(500, node_size=128, value_fn=lambda e: e * 4)
        assert tree.search(400) == 100  # entry 100 has value 400
        assert tree.search(401) == INVALID_CODE

    def test_gigascale_tree_is_cheap_to_build(self):
        tree = make_tree((2 << 30) // 4)  # 2 GB of 4-byte values
        assert tree.height == 6
        assert tree.n_entries == (2 << 30) // 4
        probe = 123_456_789
        assert run_stream(csb_lookup_stream(tree, probe, False)) == probe


class TestProperties:
    @given(
        n=st.integers(1, 30_000),
        node_size=st.sampled_from([48, 64, 128, 256]),
        probes=st.lists(st.integers(-5, 30_005), min_size=1, max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_search_agrees_with_membership(self, n, node_size, probes):
        tree = make_tree(n, node_size=node_size)
        for probe in probes:
            expected = probe if 0 <= probe < n else INVALID_CODE
            assert tree.search(probe) == expected

    @given(n=st.integers(1, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_stream_equals_python_search(self, n):
        tree = make_tree(n, node_size=64)
        for probe in {0, n // 2, n - 1, n}:
            assert run_stream(csb_lookup_stream(tree, probe, False)) == tree.search(probe)
