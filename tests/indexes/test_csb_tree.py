"""Correctness and invariant tests for the materialized CSB+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import IndexStructureError
from repro.indexes.base import INVALID_CODE
from repro.indexes.csb_tree import CSBTree, csb_lookup_stream
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine, Prefetch, Suspend, record_events
from repro.sim.allocator import AddressSpaceAllocator


def make_tree(keys, values=None, node_size=128):
    return CSBTree(
        AddressSpaceAllocator(), "tree", keys, values, node_size=node_size
    )


def run_stream(stream):
    return ExecutionEngine(HASWELL).run(stream)


class TestBulkLoad:
    def test_single_leaf(self):
        tree = make_tree([1, 2, 3])
        assert tree.height == 1
        tree.check_invariants()
        assert tree.search(2) == 2
        assert tree.search(4) == INVALID_CODE

    def test_multi_level(self):
        keys = list(range(0, 3000, 2))
        tree = make_tree(keys)
        assert tree.height >= 2
        tree.check_invariants()
        for key in keys[::17]:
            assert tree.search(key) == key
        assert tree.search(1) == INVALID_CODE

    def test_values_distinct_from_keys(self):
        keys = list(range(100))
        tree = make_tree(keys, [k * 10 for k in keys])
        assert tree.search(7) == 70

    def test_rejects_unsorted_keys(self):
        with pytest.raises(IndexStructureError):
            make_tree([3, 1, 2])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(IndexStructureError):
            make_tree([1, 1, 2])

    def test_rejects_mismatched_values(self):
        with pytest.raises(IndexStructureError):
            make_tree([1, 2], [1])

    def test_rejects_tiny_node(self):
        with pytest.raises(IndexStructureError):
            make_tree([1], node_size=18)

    def test_iter_items_in_order(self):
        keys = list(range(0, 500, 3))
        tree = make_tree(keys, [k + 1 for k in keys])
        assert list(tree.iter_items()) == [(k, k + 1) for k in keys]


class TestInsert:
    def test_insert_and_search(self):
        tree = make_tree(list(range(0, 100, 2)))
        tree.insert(31, 31)
        tree.check_invariants()
        assert tree.search(31) == 31
        assert tree.n_entries == 51

    def test_duplicate_insert_rejected(self):
        tree = make_tree([1, 2, 3])
        with pytest.raises(IndexStructureError):
            tree.insert(2, 2)

    def test_many_inserts_with_splits(self):
        tree = make_tree([0], node_size=64)
        rng = random.Random(5)
        keys = rng.sample(range(1, 5000), 1200)
        for key in keys:
            tree.insert(key, key * 3)
        tree.check_invariants()
        assert tree.height >= 3
        for key in keys[::37]:
            assert tree.search(key) == key * 3
        assert [k for k, _ in tree.iter_items()] == sorted([0] + keys)

    def test_descending_inserts(self):
        tree = make_tree([10_000], node_size=64)
        for key in range(500, 0, -1):
            tree.insert(key, key)
        tree.check_invariants()
        for key in range(1, 501, 7):
            assert tree.search(key) == key


class TestNodeGroups:
    def test_children_are_contiguous(self):
        tree = make_tree(list(range(0, 2000, 2)))
        root = tree.root_handle()
        group = root.child_group
        addresses = [tree.node_address(child) for child in group.nodes]
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas == {tree.node_size}

    def test_group_moves_on_split(self):
        tree = make_tree(list(range(0, 400, 4)), node_size=64)
        root_group_before = tree.root_handle()
        for key in range(1, 200, 4):
            tree.insert(key, key)
        tree.check_invariants()  # back-references stay valid after realloc


class TestLookupStream:
    def test_stream_matches_python_search(self):
        keys = list(range(0, 4000, 3))
        tree = make_tree(keys)
        keyset = set(keys)
        for probe in range(-3, 4005, 41):
            expected = probe if probe in keyset else INVALID_CODE
            assert run_stream(csb_lookup_stream(tree, probe, False)) == expected

    def test_interleaved_suspends_once_per_level_below_root(self):
        tree = make_tree(list(range(0, 4000, 2)))
        events, _ = record_events(csb_lookup_stream(tree, 1234, True))
        suspends = [e for e in events if isinstance(e, Suspend)]
        assert len(suspends) == tree.height - 1

    def test_node_prefetch_covers_whole_node(self):
        tree = make_tree(list(range(0, 4000, 2)))
        events, _ = record_events(csb_lookup_stream(tree, 1234, True))
        prefetches = [e for e in events if isinstance(e, Prefetch)]
        assert prefetches and all(p.size == tree.node_size for p in prefetches)

    def test_interleaved_equals_sequential(self):
        keys = list(range(0, 6000, 3))
        tree = make_tree(keys)
        probes = list(range(-5, 6005, 97))
        seq = run_sequential(
            ExecutionEngine(HASWELL),
            lambda v, il: csb_lookup_stream(tree, v, il),
            probes,
        )
        inter = run_interleaved(
            ExecutionEngine(HASWELL),
            lambda v, il: csb_lookup_stream(tree, v, il),
            probes,
            6,
        )
        assert seq == inter


class TestProperties:
    @given(
        keys=st.sets(st.integers(0, 20_000), min_size=1, max_size=400),
        node_size=st.sampled_from([48, 64, 128, 256]),
    )
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_then_search_everything(self, keys, node_size):
        keys = sorted(keys)
        tree = make_tree(keys, node_size=node_size)
        tree.check_invariants()
        for key in keys:
            assert tree.search(key) == key
        for absent in (-1, 20_001):
            assert tree.search(absent) == INVALID_CODE

    @given(
        initial=st.sets(st.integers(0, 10_000), min_size=1, max_size=100),
        inserts=st.sets(st.integers(10_001, 20_000), min_size=0, max_size=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_inserts_preserve_invariants_and_content(self, initial, inserts):
        tree = make_tree(sorted(initial), node_size=64)
        for key in inserts:
            tree.insert(key, key)
        tree.check_invariants()
        expected = sorted(initial | inserts)
        assert [k for k, _ in tree.iter_items()] == expected
        for key in expected:
            assert tree.search(key) == key
