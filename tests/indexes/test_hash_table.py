"""Tests for the bucket-chain hash table and its probe coroutine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import IndexStructureError
from repro.indexes.base import INVALID_CODE
from repro.indexes.hash_table import (
    NODE_SIZE,
    ChainedHashTable,
    hash_probe_stream,
    mix64,
)
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine
from repro.sim.allocator import AddressSpaceAllocator


def make_table(n_buckets=64):
    return ChainedHashTable(AddressSpaceAllocator(), "ht", n_buckets)


def run_stream(stream):
    return ExecutionEngine(HASWELL).run(stream)


class TestMix64:
    def test_deterministic(self):
        assert mix64(42) == mix64(42)

    def test_spreads_consecutive_keys(self):
        buckets = {mix64(k) % 64 for k in range(64)}
        assert len(buckets) > 32  # consecutive keys land in many buckets

    def test_stays_in_64_bits(self):
        assert 0 <= mix64(2**63) < 2**64


class TestInsertLookup:
    def test_basic_roundtrip(self):
        table = make_table()
        table.insert(5, 50)
        assert table.lookup(5) == 50
        assert table.lookup(6) == INVALID_CODE

    def test_chain_collisions_resolved(self):
        table = make_table(n_buckets=1)  # everything collides
        for key in range(50):
            table.insert(key, key * 2)
        assert table.chain_length(0) == 50
        for key in range(50):
            assert table.lookup(key) == key * 2

    def test_growth_beyond_initial_capacity(self):
        table = make_table(n_buckets=16)
        for key in range(3000):
            table.insert(key, key)
        assert table.n_entries == 3000
        assert table.lookup(2999) == 2999
        assert table.nodes_region.size >= 3000 * NODE_SIZE

    def test_build_bulk(self):
        table = make_table()
        table.build(range(100), range(100, 200))
        assert table.lookup(0) == 100
        assert table.lookup(99) == 199

    def test_zero_buckets_rejected(self):
        with pytest.raises(IndexStructureError):
            make_table(0)


class TestProbeStream:
    def test_stream_matches_python(self):
        table = make_table()
        table.build(range(0, 500, 5), range(100))
        for probe in (0, 5, 495, 496, -3):
            assert run_stream(hash_probe_stream(table, probe)) == table.lookup(probe)

    def test_interleaved_equals_sequential(self):
        table = make_table(n_buckets=32)
        table.build(range(0, 1000, 3), range(334))
        probes = list(range(-2, 1002, 13))
        seq = run_sequential(
            ExecutionEngine(HASWELL),
            lambda v, il: hash_probe_stream(table, v, il),
            probes,
        )
        inter = run_interleaved(
            ExecutionEngine(HASWELL),
            lambda v, il: hash_probe_stream(table, v, il),
            probes,
            8,
        )
        assert seq == inter

    def test_probe_of_long_chain_touches_each_node(self):
        table = make_table(n_buckets=1)
        for key in range(10):
            table.insert(key, key)
        # Probing the deepest key (inserted first -> end of chain) walks
        # all 10 nodes.
        from repro.sim import Load, record_events

        events, result = record_events(hash_probe_stream(table, 0, False))
        node_loads = [
            e for e in events if isinstance(e, Load) and e.size == NODE_SIZE
        ]
        assert result == 0
        assert len(node_loads) == 10


class TestProperties:
    @given(
        entries=st.dictionaries(
            st.integers(0, 10_000), st.integers(0, 10_000), max_size=300
        ),
        probes=st.lists(st.integers(-10, 10_010), max_size=20),
        n_buckets=st.sampled_from([1, 7, 64, 256]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lookup_agrees_with_dict(self, entries, probes, n_buckets):
        table = make_table(n_buckets)
        table.build(entries.keys(), entries.values())
        for probe in list(entries)[:20] + probes:
            expected = entries.get(probe, INVALID_CODE)
            assert table.lookup(probe) == expected
            assert run_stream(hash_probe_stream(table, probe)) == expected
