"""Correctness tests for the five binary-search implementations.

The key invariant (paper Section 5.1): every implementation performs the
*same search* — only the execution strategy differs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HASWELL
from repro.errors import IndexStructureError
from repro.indexes.base import INVALID_CODE
from repro.indexes.binary_search import (
    binary_search_baseline,
    binary_search_coro,
    binary_search_coro_interleaved,
    binary_search_coro_sequential,
    binary_search_std,
    locate_stream,
    reference_search,
)
from repro.indexes.sorted_array import SortedIntArray
from repro.interleaving import run_interleaved, run_sequential
from repro.sim import ExecutionEngine, Load, Prefetch, Suspend, record_events
from repro.sim.allocator import AddressSpaceAllocator


def make_table(values):
    return SortedIntArray.from_values(AddressSpaceAllocator(), "t", values)


def run_stream(stream):
    engine = ExecutionEngine(HASWELL)
    return engine.run(stream)


class TestSemantics:
    """All variants return the index of the last element <= value."""

    @pytest.mark.parametrize("value,expected", [
        (-5, 0), (0, 0), (1, 0), (10, 1), (11, 1), (70, 7), (100, 7),
    ])
    def test_baseline_on_known_array(self, value, expected):
        table = make_table([0, 10, 20, 30, 40, 50, 60, 70])
        assert run_stream(binary_search_baseline(table, value)) == expected

    def test_single_element(self):
        table = make_table([42])
        assert run_stream(binary_search_baseline(table, 42)) == 0
        assert run_stream(binary_search_baseline(table, 0)) == 0
        assert run_stream(binary_search_baseline(table, 99)) == 0

    def test_empty_table_rejected(self):
        table = make_table([1])
        table._size = 0
        with pytest.raises(IndexStructureError):
            list(binary_search_baseline(table, 1))

    def test_non_power_of_two_sizes(self):
        for n in (2, 3, 5, 7, 13, 100, 101):
            values = list(range(0, 2 * n, 2))
            table = make_table(values)
            for value in (-1, 0, 1, n, 2 * n - 2, 2 * n - 1, 5000):
                expected = reference_search(values, value)
                assert run_stream(binary_search_baseline(table, value)) == expected


class TestVariantEquivalence:
    VARIANTS = [
        ("std", lambda t, v: binary_search_std(t, v)),
        ("baseline", lambda t, v: binary_search_baseline(t, v)),
        ("coro-seq", lambda t, v: binary_search_coro(t, v, False)),
        ("coro-s-seq", lambda t, v: binary_search_coro_sequential(t, v)),
    ]

    @pytest.mark.parametrize("name,factory", VARIANTS)
    def test_matches_reference(self, name, factory):
        rng = np.random.RandomState(7)
        values = np.unique(rng.randint(0, 10_000, 500))
        table = make_table(values)
        for value in rng.randint(-100, 10_100, 100):
            expected = reference_search(list(values), value)
            assert run_stream(factory(table, int(value))) == expected, name

    def test_interleaved_coro_matches_sequential(self):
        rng = np.random.RandomState(3)
        values = np.unique(rng.randint(0, 5_000, 300))
        table = make_table(values)
        probes = [int(v) for v in rng.randint(-10, 5_010, 120)]
        seq = run_sequential(
            ExecutionEngine(HASWELL),
            lambda v, il: binary_search_coro(table, v, il),
            probes,
        )
        for group in (1, 2, 5, 8, 32, 1000):
            inter = run_interleaved(
                ExecutionEngine(HASWELL),
                lambda v, il: binary_search_coro(table, v, il),
                probes,
                group,
            )
            assert inter == seq, f"group={group}"

    def test_coro_separate_interleaved_matches(self):
        values = list(range(0, 1000, 3))
        table = make_table(values)
        probes = [0, 3, 4, 500, 998, 999, -1]
        expected = [reference_search(values, p) for p in probes]
        got = run_interleaved(
            ExecutionEngine(HASWELL),
            lambda v, il: binary_search_coro_interleaved(table, v),
            probes,
            4,
        )
        assert got == expected


class TestEventShape:
    def test_sequential_coro_never_suspends(self):
        table = make_table(list(range(64)))
        events, _ = record_events(binary_search_coro(table, 31, False))
        assert not any(isinstance(e, (Suspend, Prefetch)) for e in events)

    def test_interleaved_coro_prefixes_each_load(self):
        table = make_table(list(range(64)))
        events, _ = record_events(binary_search_coro(table, 31, True))
        loads = [e for e in events if isinstance(e, Load)]
        prefetches = [e for e in events if isinstance(e, Prefetch)]
        suspends = [e for e in events if isinstance(e, Suspend)]
        assert len(loads) == len(prefetches) == len(suspends) == 6  # log2(64)
        assert [p.addr for p in prefetches] == [l.addr for l in loads]

    def test_std_yields_speculation_hints(self):
        table = make_table(list(range(64)))
        events, _ = record_events(binary_search_std(table, 31))
        loads = [e for e in events if isinstance(e, Load)]
        assert all(l.spec_next is not None for l in loads[:-1])
        assert loads[-1].spec_next is None

    def test_baseline_yields_no_speculation(self):
        table = make_table(list(range(64)))
        events, _ = record_events(binary_search_baseline(table, 31))
        assert all(
            e.spec_next is None for e in events if isinstance(e, Load)
        )

    def test_probe_count_is_logarithmic(self):
        for n in (2, 16, 100, 1024):
            table = make_table(list(range(n)))
            events, _ = record_events(binary_search_baseline(table, n // 2))
            loads = [e for e in events if isinstance(e, Load)]
            assert len(loads) == int(np.ceil(np.log2(n)))


class TestLocate:
    def test_found_and_absent(self):
        values = list(range(0, 100, 5))
        table = make_table(values)
        assert run_stream(locate_stream(table, 35)) == 7
        assert run_stream(locate_stream(table, 36)) == INVALID_CODE
        assert run_stream(locate_stream(table, -1)) == INVALID_CODE
        assert run_stream(locate_stream(table, 0)) == 0
        assert run_stream(locate_stream(table, 95)) == 19


class TestProperties:
    @given(
        values=st.lists(st.integers(-10_000, 10_000), min_size=1, max_size=300),
        probes=st.lists(st.integers(-11_000, 11_000), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_variants_agree_with_oracle(self, values, probes):
        values = sorted(set(values))
        table = make_table(values)
        for probe in probes:
            expected = reference_search(values, probe)
            for name, factory in TestVariantEquivalence.VARIANTS:
                assert run_stream(factory(table, probe)) == expected, name

    @given(
        values=st.lists(st.integers(0, 5_000), min_size=2, max_size=200),
        group=st.integers(1, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_interleaving_is_pure_policy(self, values, group):
        values = sorted(set(values))
        table = make_table(values)
        probes = values[::3] + [max(values) + 1]
        expected = [reference_search(values, p) for p in probes]
        got = run_interleaved(
            ExecutionEngine(HASWELL),
            lambda v, il: binary_search_coro(table, v, il),
            probes,
            group,
        )
        assert got == expected
