"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "SimulationError",
            "AddressError",
            "AllocationError",
            "SchedulerError",
            "CoroutineStateError",
            "IndexStructureError",
            "KeyNotFoundError",
            "ColumnStoreError",
            "WorkloadError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.AddressError, errors.SimulationError)
        assert issubclass(errors.AllocationError, errors.SimulationError)
        assert issubclass(errors.CoroutineStateError, errors.SchedulerError)
        assert issubclass(errors.KeyNotFoundError, errors.IndexStructureError)

    def test_one_except_catches_everything(self):
        from repro.sim.allocator import AddressSpaceAllocator

        with pytest.raises(repro.ReproError):
            AddressSpaceAllocator().allocate("x", -1)


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_key_entry_points_callable(self):
        assert callable(repro.run_interleaved)
        assert callable(repro.binary_search_coro)
        assert callable(repro.run_in_predicate)

    def test_subpackage_alls_resolve(self):
        import repro.analysis as analysis
        import repro.columnstore as columnstore
        import repro.indexes as indexes
        import repro.interleaving as interleaving
        import repro.sim as sim
        import repro.workloads as workloads

        for module in (analysis, columnstore, indexes, interleaving, sim, workloads):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
